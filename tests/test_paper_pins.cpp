// Paper-reference pins: lock the modelled numbers for the paper's four
// variants so model refactors cannot silently drift the figures the repo
// reproduces (Fig. 6 area, Table I power, Fig. 8 throughput).
//
// The pin workload is the small pruned study network (32x32 input, 1/8
// channels) — big enough to exercise every layer type, small enough that
// the whole file runs in well under a second.  Area and cycle counts are
// integers and pinned exactly; power and GOPS are doubles and pinned to a
// relative 1e-9 (identical math, allowing only for libm/platform noise).
//
// If a deliberate model change moves these numbers, re-pin them in the same
// commit and say why in the message.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "driver/study.hpp"
#include "model/area.hpp"
#include "model/power.hpp"

namespace {

using namespace tsca;

struct Pin {
  const char* name;
  int alms;
  int dsp;
  int m20k;
  double static_w;
  double dynamic_w;
  std::int64_t total_cycles;
  double network_gops;
};

// Generated from the models at the time of pinning (see file comment).
constexpr Pin kPins[] = {
    {"16-unopt", 26190, 32, 1029, 1.2821062460267008, 0.085603600000000002,
     194143ll, 1.365459931384845},
    {"256-unopt", 90125, 416, 1032, 1.72666381913541, 0.219335, 17309ll,
     13.847946547884188},
    {"256-opt", 105799, 416, 1032, 1.8356494357914812, 0.5133588, 17309ll,
     37.767126948775058},
    {"512-opt", 200127, 832, 1036, 2.4915378655435472, 0.77436191999999981,
     13561ll, 37.094722002795166},
};

const driver::StudyNetwork& pin_network() {
  static const driver::StudyNetwork net = driver::build_study_network(
      {.pruned = true, .input_extent = 32, .channel_divisor = 8});
  return net;
}

const Pin& pin_for(const core::ArchConfig& cfg) {
  for (const Pin& p : kPins)
    if (cfg.name == p.name) return p;
  ADD_FAILURE() << "no pin for paper variant " << cfg.name;
  static Pin none{};
  return none;
}

TEST(PaperPins, AreaIsExact) {
  for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants()) {
    const Pin& pin = pin_for(cfg);
    const model::AreaReport area = model::estimate_area(cfg);
    EXPECT_EQ(area.total_alms, pin.alms) << cfg.name;
    EXPECT_EQ(area.total_dsp, pin.dsp) << cfg.name;
    EXPECT_EQ(area.total_m20k, pin.m20k) << cfg.name;
  }
}

TEST(PaperPins, PowerMatchesToNineDigits) {
  for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants()) {
    const Pin& pin = pin_for(cfg);
    const model::PowerEstimate power =
        model::estimate_power(cfg, model::estimate_area(cfg),
                              model::Activity::peak(cfg),
                              model::FpgaDevice::arria10_sx660());
    EXPECT_NEAR(power.static_w, pin.static_w, 1e-9 * pin.static_w)
        << cfg.name;
    EXPECT_NEAR(power.dynamic_w, pin.dynamic_w, 1e-9 * pin.dynamic_w)
        << cfg.name;
  }
}

TEST(PaperPins, PerformanceCyclesExactGopsPinned) {
  for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants()) {
    const Pin& pin = pin_for(cfg);
    const driver::VariantResult perf =
        driver::evaluate_variant(cfg, pin_network());
    EXPECT_EQ(perf.total_cycles, pin.total_cycles) << cfg.name;
    EXPECT_NEAR(perf.network_gops, pin.network_gops,
                1e-9 * pin.network_gops)
        << cfg.name;
  }
}

// The ordering facts the paper's conclusions rest on, independent of the
// exact pinned values: optimization buys throughput at an area premium, and
// 512 is faster than 256 per instance but less area-efficient.
TEST(PaperPins, VariantOrderingInvariants) {
  const auto variants = core::ArchConfig::paper_variants();
  ASSERT_EQ(variants.size(), 4u);
  const Pin& p16 = pin_for(variants[0]);
  const Pin& p256u = pin_for(variants[1]);
  const Pin& p256o = pin_for(variants[2]);
  const Pin& p512o = pin_for(variants[3]);
  EXPECT_LT(p16.network_gops, p256u.network_gops);
  EXPECT_LT(p256u.network_gops, p256o.network_gops);
  EXPECT_GT(p256o.network_gops / p256o.alms, p512o.network_gops / p512o.alms);
  EXPECT_LT(p256u.alms, p256o.alms);
  EXPECT_LT(p256o.alms, p512o.alms);
}

}  // namespace
