// sm8 transport canonicality property: every octet the simulator transports
// in sign+magnitude format — packed weight entries, the serialized weight
// stream, tile words, and SRAM bank contents after conv/pool execution —
// must be a canonical encoding (no -0 = 0x80), over randomized shapes and
// weight sparsities.  The datapath decodes to two's complement and
// re-encodes on write-back, so a single missed canonicalization would leak
// 0x80 octets into banks or streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "pack/weight_pack.hpp"
#include "quant/sm8.hpp"
#include "sim/sram.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return bank;
}

void expect_canonical_bank_contents(core::Accelerator& acc,
                                    const char* context) {
  for (int lane = 0; lane < acc.num_banks(); ++lane) {
    const sim::SramBank& bank = acc.bank(lane);
    for (int addr = 0; addr < bank.size_words(); ++addr) {
      const sim::Word word = bank.read_word(addr);
      for (int i = 0; i < sim::kWordBytes; ++i)
        ASSERT_TRUE(quant::sm8_is_canonical(word.b[static_cast<std::size_t>(i)]))
            << context << ": bank " << lane << " word " << addr << " octet "
            << i << " is -0";
    }
  }
}

// Packed entries and the serialized stream only carry canonical value octets
// (count and offset bytes are < 0x80 by construction).
TEST(Sm8Transport, PackerAndStreamAreCanonical) {
  Rng rng(21);
  for (const double density : {0.0, 0.1, 0.5, 1.0}) {
    const int oc = rng.next_int(1, 12);
    const int ic = rng.next_int(1, 12);
    const pack::PackedFilters packed =
        pack::pack_filters(random_filters({oc, ic, 3, 3}, density, rng));

    for (int o = 0; o < oc; ++o)
      for (int c = 0; c < ic; ++c)
        for (const pack::PackedEntry& e : packed.list(o, c, 0, 0)) {
          ASSERT_TRUE(quant::sm8_is_canonical(e.value));
          ASSERT_NE(quant::sm8_decode(e.value), 0)
              << "packed zero weight at density " << density;
        }

    // Walk the serialized stream: u8 count, then count × {value, offset}.
    const std::vector<std::uint8_t> bytes = pack::serialize(packed);
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const int count = bytes[pos++];
      for (int k = 0; k < count; ++k) {
        ASSERT_TRUE(quant::sm8_is_canonical(bytes[pos]))
            << "stream value octet at " << pos;
        ASSERT_LT(bytes[pos + 1], 16u) << "offset octet at " << pos + 1;
        pos += 2;
      }
    }
    ASSERT_EQ(pos, bytes.size());
  }
}

// Tile → word encoding never produces -0, for any representable tile value.
TEST(Sm8Transport, WordFromTileIsCanonical) {
  Rng rng(22);
  for (int iter = 0; iter < 200; ++iter) {
    pack::Tile tile{};
    for (auto& v : tile.v)
      v = static_cast<std::int8_t>(rng.next_int(-127, 127));
    const sim::Word word = sim::word_from_tile(tile);
    for (const std::uint8_t octet : word.b)
      ASSERT_TRUE(quant::sm8_is_canonical(octet));
    // Transport round trip: decode + re-encode is the identity on canonical
    // words, so a value can cross any number of bank/FIFO hops unchanged.
    EXPECT_EQ(sim::word_from_tile(sim::tile_from_word(word)), word);
  }
}

// After striped conv + pool execution the banks hold IFM/OFM tiles and the
// packed weight stream; every octet must still be canonical.
TEST(Sm8Transport, BankContentsCanonicalAfterConvAndPool) {
  Rng rng(23);
  for (const double density : {0.0, 0.25, 1.0}) {
    const int c = rng.next_int(3, 9);
    const int oc = rng.next_int(3, 9);
    const int h = rng.next_int(8, 16);
    const int w = rng.next_int(8, 16);

    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.bank_words = 128;  // force striping + weight chunking
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime rt(acc, dram, dma, {.mode = driver::ExecMode::kCycle});

    const pack::TiledFm input = pack::to_tiled(random_fm({c, h, w}, rng));
    const pack::PackedFilters packed =
        pack::pack_filters(random_filters({oc, c, 3, 3}, density, rng));
    const std::vector<std::int32_t> bias(static_cast<std::size_t>(oc), -3);

    driver::LayerRun run;
    const pack::TiledFm conv_out = rt.run_conv(
        input, packed, bias, nn::Requant{.shift = 5, .relu = false}, run);
    expect_canonical_bank_contents(acc, "after conv");

    const nn::FmShape ps = conv_out.shape();
    const nn::FmShape pool_out{ps.c, ps.h / 2, ps.w / 2};
    if (pool_out.h > 0 && pool_out.w > 0) {
      rt.run_pad_pool(conv_out, core::Opcode::kPool, pool_out, 2, 2, 0, 0,
                      run);
      expect_canonical_bank_contents(acc, "after pool");
    }
  }
}

}  // namespace
}  // namespace tsca
