// The zero-allocation warm path, measured: under TSCA_COUNT_ALLOCS the
// global operator new is hooked, and these tests assert that a warm serving
// request allocates at most a small documented constant — the per-request
// bookkeeping DESIGN.md §15 itemizes (response logits buffer, promise state,
// queue/batch containers), never the per-layer tensor churn the scratch
// arenas and Runtime reuse eliminated.
//
// In a build without TSCA_COUNT_ALLOCS the serving test skips (there is
// nothing to measure) and only the API-coherence test runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "core/config.hpp"
#include "driver/program.hpp"
#include "nn/zoo.hpp"
#include "obs/alloc_count.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

// What one warm request may allocate (DESIGN.md §15): the caller's input
// copy, the logits buffer the response donates, the promise/future shared
// state, the Pending's queue slot, the scheduler's batch vector, the
// per-batch result containers, and the pool layers' output maps.  Each is
// O(1) and small (measured steady state: ~18 allocations); 32 is a
// deliberately loose ceiling that still fails instantly if any per-layer
// working buffer (tile planes, accumulators, metric-name strings — dozens
// to thousands of allocations per request) leaks back in.
constexpr std::int64_t kMaxAllocsPerWarmRequest = 32;
constexpr std::int64_t kMaxBytesPerWarmRequest = 64 * 1024;

nn::FeatureMapI8 make_input(const nn::FmShape& shape, std::uint64_t seed) {
  Rng rng(seed);
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-64, 64));
  return fm;
}

TEST(WarmAllocApi, StatsAreCoherentWithBuildMode) {
  obs::reset_warm_alloc_stats();
  if (!obs::alloc_counting_enabled()) {
    // Uninstrumented build: the API exists and reads zero, armed or not.
    const obs::WarmPathGuard guard;
    std::vector<int> v(1024, 1);
    ASSERT_NE(v[0], 0);
    EXPECT_EQ(obs::warm_alloc_stats().count, 0);
    EXPECT_EQ(obs::warm_alloc_stats().bytes, 0);
    return;
  }

  // Instrumented: allocations count only while armed.
  {
    std::vector<int> cold(1024, 1);
    ASSERT_NE(cold[0], 0);
  }
  EXPECT_EQ(obs::warm_alloc_stats().count, 0);
  {
    const obs::WarmPathGuard guard;
    std::vector<int> hot(1024, 1);
    ASSERT_NE(hot[0], 0);
  }
  const obs::AllocStats stats = obs::warm_alloc_stats();
  EXPECT_GE(stats.count, 1);
  EXPECT_GE(stats.bytes, static_cast<std::int64_t>(1024 * sizeof(int)));
  obs::reset_warm_alloc_stats();
  EXPECT_EQ(obs::warm_alloc_stats().count, 0);
}

TEST(WarmAllocServe, WarmRequestsStayWithinDocumentedBound) {
  if (!obs::alloc_counting_enabled())
    GTEST_SKIP() << "build without TSCA_COUNT_ALLOCS";

  const zoo::ZooModel m = zoo::make_residual_cifar(7);
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(m.net, m.model,
                                      core::ArchConfig::k256_opt());
  serve::Server server(program, {.workers = 1});
  const nn::FeatureMapI8 input = make_input(m.net.input_shape(), 0xA11);

  const auto serve_one = [&] {
    serve::Response r = server.submit(input).get();
    ASSERT_EQ(r.status, serve::Status::kOk);
  };

  // The first request pays for whatever startup did not presize (first
  // to_tiled growth, per-class metric caches, pooled tensors) — measure it
  // for scale.  The deep cold costs (compile, weight staging,
  // reserve_warm_scratch) run at server construction, before any request.
  obs::reset_warm_alloc_stats();
  std::int64_t cold_allocs = 0;
  {
    const obs::WarmPathGuard guard;
    serve_one();
    cold_allocs = obs::warm_alloc_stats().count;
  }

  // A few more unmeasured rounds let every lazily-grown buffer (deque
  // blocks, metric caches, pooled tensors) reach steady state.
  for (int i = 0; i < 8; ++i) serve_one();

  constexpr std::int64_t kWarmRequests = 64;
  obs::reset_warm_alloc_stats();
  {
    const obs::WarmPathGuard guard;
    for (std::int64_t i = 0; i < kWarmRequests; ++i) serve_one();
  }
  const obs::AllocStats warm = obs::warm_alloc_stats();
  const std::int64_t allocs_per_request = warm.count / kWarmRequests;
  const std::int64_t bytes_per_request = warm.bytes / kWarmRequests;

  EXPECT_LE(allocs_per_request, kMaxAllocsPerWarmRequest)
      << warm.count << " allocations over " << kWarmRequests << " requests";
  EXPECT_LE(bytes_per_request, kMaxBytesPerWarmRequest)
      << warm.bytes << " bytes over " << kWarmRequests << " requests";
  // The arenas must have eliminated the per-layer churn: a steady-state
  // request allocates no more than the first one, which additionally paid
  // every lazily-grown buffer.  (The strict version of "warm beats cold" —
  // compile and scratch reservation — happens at server startup and is
  // covered by the compile-cache benchmark, not measurable here.)
  EXPECT_LE(allocs_per_request, cold_allocs)
      << "warm " << allocs_per_request << "/req vs cold " << cold_allocs;

  // The per-worker reuse metrics observed their batches.
  EXPECT_GT(server.metrics().histogram("serve.worker.arena_bytes")
                .snapshot().count, 0);
  EXPECT_GT(server.metrics().histogram("serve.worker.scratch_bytes")
                .snapshot().count, 0);
}

}  // namespace
}  // namespace tsca
