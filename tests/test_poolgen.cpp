// Pool/pad micro-op generator: property tests against the nn:: reference by
// replaying generated micro-ops through the datapath.
#include <gtest/gtest.h>

#include "core/poolgen.hpp"
#include "nn/layers.hpp"
#include "pack/tile.hpp"
#include "util/rng.hpp"

namespace tsca::core {
namespace {

// Replays the generated steps exactly like the pool/pad unit would and
// returns the resulting output map.
nn::FeatureMapI8 replay(const PadPoolInstr& instr,
                        const nn::FeatureMapI8& input) {
  const pack::TiledFm tiled = pack::to_tiled(input);
  nn::FeatureMapI8 out({instr.channels,
                        instr.ofm_tiles_y * pack::kTileDim,
                        instr.ofm_tiles_x * pack::kTileDim});
  for (int c = 0; c < instr.channels; ++c) {
    for (int oty = 0; oty < instr.ofm_tiles_y; ++oty) {
      for (int otx = 0; otx < instr.ofm_tiles_x; ++otx) {
        pack::Tile reg{};
        pack::Tile held{};
        for (const PoolStep& step : make_pool_steps(instr, oty, otx)) {
          if (step.first) reg = pack::Tile{};
          if (step.load) {
            held = (step.in_ty < tiled.tiles_y() && step.in_tx < tiled.tiles_x())
                       ? tiled.tile(c, step.in_ty, step.in_tx)
                       : pack::Tile{};
          }
          apply_pool_pad(step.op, held, reg);
          if (step.last) {
            for (int vy = 0; vy < pack::kTileDim; ++vy)
              for (int vx = 0; vx < pack::kTileDim; ++vx)
                out.at(c, oty * pack::kTileDim + vy,
                       otx * pack::kTileDim + vx) = reg.at(vy, vx);
          }
        }
      }
    }
  }
  // Crop to the logical extent.
  nn::FeatureMapI8 cropped({instr.channels, instr.ofm_h, instr.ofm_w});
  for (int c = 0; c < instr.channels; ++c)
    for (int y = 0; y < instr.ofm_h; ++y)
      for (int x = 0; x < instr.ofm_w; ++x)
        cropped.at(c, y, x) = out.at(c, y, x);
  return cropped;
}

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-80, 80));
  return fm;
}

PadPoolInstr pool_instr(const nn::FmShape& in, int win, int stride) {
  PadPoolInstr p;
  p.ifm_tiles_x = pack::tiles_for(in.w);
  p.ifm_tiles_y = pack::tiles_for(in.h);
  p.ifm_h = in.h;
  p.ifm_w = in.w;
  p.channels = in.c;
  p.ofm_h = nn::conv_out_extent(in.h, win, stride);
  p.ofm_w = nn::conv_out_extent(in.w, win, stride);
  p.ofm_tiles_x = pack::tiles_for(p.ofm_w);
  p.ofm_tiles_y = pack::tiles_for(p.ofm_h);
  p.win = win;
  p.stride = stride;
  return p;
}

struct PoolGeometry {
  nn::FmShape in;
  int win;
  int stride;
};

class PoolGenSweep : public ::testing::TestWithParam<PoolGeometry> {};

TEST_P(PoolGenSweep, ReplayMatchesReference) {
  const PoolGeometry& g = GetParam();
  Rng rng(0x90 + static_cast<std::uint64_t>(g.win * 10 + g.stride));
  const nn::FeatureMapI8 input = random_fm(g.in, rng);
  const PadPoolInstr instr = pool_instr(g.in, g.win, g.stride);
  EXPECT_EQ(replay(instr, input), nn::maxpool_i8(input, {g.win, g.stride}));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolGenSweep,
    ::testing::Values(PoolGeometry{{2, 8, 8}, 2, 2},
                      PoolGeometry{{1, 12, 12}, 3, 3},
                      PoolGeometry{{3, 10, 10}, 3, 2},
                      PoolGeometry{{1, 9, 9}, 2, 1},
                      PoolGeometry{{2, 16, 16}, 5, 3},
                      PoolGeometry{{1, 8, 8}, 8, 8},
                      PoolGeometry{{2, 11, 7}, 4, 2}),
    [](const auto& info) {
      const PoolGeometry& g = info.param;
      return "h" + std::to_string(g.in.h) + "w" + std::to_string(g.in.w) +
             "win" + std::to_string(g.win) + "s" + std::to_string(g.stride);
    });

TEST(PoolGenPad, ReplayMatchesReferencePadding) {
  Rng rng(0x91);
  const nn::FeatureMapI8 input = random_fm({2, 9, 10}, rng);
  for (const nn::Padding& pad :
       {nn::Padding::uniform(1), nn::Padding{3, 0, 2, 1}}) {
    PadPoolInstr p;
    p.ifm_tiles_x = pack::tiles_for(10);
    p.ifm_tiles_y = pack::tiles_for(9);
    p.ifm_h = 9;
    p.ifm_w = 10;
    p.channels = 2;
    p.ofm_h = 9 + pad.top + pad.bottom;
    p.ofm_w = 10 + pad.left + pad.right;
    p.ofm_tiles_x = pack::tiles_for(p.ofm_w);
    p.ofm_tiles_y = pack::tiles_for(p.ofm_h);
    p.win = 1;
    p.stride = 1;
    p.offset_y = -pad.top;
    p.offset_x = -pad.left;
    EXPECT_EQ(replay(p, input), nn::pad_i8(input, pad));
  }
}

TEST(PoolGenSteps, ChunksNeverExceedFourMaxUnits) {
  const PadPoolInstr instr = pool_instr({1, 16, 16}, 3, 1);
  for (int oty = 0; oty < instr.ofm_tiles_y; ++oty) {
    for (int otx = 0; otx < instr.ofm_tiles_x; ++otx) {
      const auto steps = make_pool_steps(instr, oty, otx);
      ASSERT_FALSE(steps.empty());
      EXPECT_TRUE(steps.front().first);
      EXPECT_TRUE(steps.back().last);
      for (const PoolStep& step : steps) {
        int used = 0;
        for (int m = 0; m < kNumMaxUnits; ++m)
          if (step.op.max_mask[static_cast<std::size_t>(m)] != 0) ++used;
        EXPECT_LE(used, kNumMaxUnits);
      }
    }
  }
}

TEST(PoolGenSteps, Vgg2x2PoolCostsOneOpPerInputTile) {
  // The paper sizes the unit (4 MAX units) for 2x2/s2: each input tile
  // produces exactly one micro-op.
  const PadPoolInstr instr = pool_instr({1, 16, 16}, 2, 2);
  const auto steps = make_pool_steps(instr, 0, 0);
  EXPECT_EQ(steps.size(), 4u);  // 4 input tiles per output tile
  for (const PoolStep& step : steps) EXPECT_TRUE(step.load);
}

TEST(PoolGenSteps, FullyPaddedTileEmitsSingleNoOp) {
  PadPoolInstr p;
  p.ifm_tiles_x = p.ifm_tiles_y = 1;
  p.ifm_h = p.ifm_w = 4;
  p.channels = 1;
  p.ofm_tiles_x = p.ofm_tiles_y = 3;
  p.ofm_h = p.ofm_w = 12;
  p.win = 1;
  p.stride = 1;
  p.offset_y = -8;  // output tile (0,0) entirely padding
  p.offset_x = -8;
  const auto steps = make_pool_steps(p, 0, 0);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_TRUE(steps.front().first);
  EXPECT_TRUE(steps.front().last);
  EXPECT_FALSE(steps.front().load);
}

TEST(PoolGenSteps, CountMatchesEnumeration) {
  const PadPoolInstr instr = pool_instr({3, 12, 12}, 3, 2);
  std::int64_t total = 0;
  for (int oty = 0; oty < instr.ofm_tiles_y; ++oty)
    for (int otx = 0; otx < instr.ofm_tiles_x; ++otx)
      total += static_cast<std::int64_t>(make_pool_steps(instr, oty, otx).size());
  EXPECT_EQ(count_pool_steps(instr), total);
}

}  // namespace
}  // namespace tsca::core
