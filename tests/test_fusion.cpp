// Fused PAD+CONV execution: the padded map stays on chip.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  return bank;
}

TEST(FusedPadConv, MatchesUnfusedResultBitExactly) {
  Rng rng(21);
  const nn::FeatureMapI8 input = random_fm({8, 12, 12}, rng);
  const nn::FilterBankI8 filters = random_filters({8, 8, 3, 3}, 0.5, rng);
  const std::vector<std::int32_t> bias(8, 3);
  const nn::Requant rq{.shift = 6, .relu = true};
  const nn::Padding pad = nn::Padding::uniform(1);

  const nn::FeatureMapI8 expected =
      nn::conv2d_i8(nn::pad_i8(input, pad), filters, bias, 1, rq);

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 4096;
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun pad_run;
  driver::LayerRun conv_run;
  pack::TiledFm out;
  ASSERT_TRUE(runtime.run_fused_pad_conv(pack::to_tiled(input), pad,
                                         pack::pack_filters(filters), bias,
                                         rq, out, pad_run, conv_run));
  EXPECT_EQ(pack::from_tiled(out), expected);
  EXPECT_GT(pad_run.cycles, 0u);
  EXPECT_GT(conv_run.cycles, 0u);
}

TEST(FusedPadConv, SavesDmaTrafficVersusSeparateExecution) {
  Rng rng(22);
  const nn::FeatureMapI8 input = random_fm({8, 16, 16}, rng);
  const nn::FilterBankI8 filters = random_filters({8, 8, 3, 3}, 0.6, rng);
  const std::vector<std::int32_t> bias(8, 0);
  const nn::Requant rq{.shift = 6, .relu = true};
  const nn::Padding pad = nn::Padding::uniform(1);

  auto dma_bytes = [&](bool fused) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.bank_words = 4096;
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    if (fused) {
      driver::LayerRun pad_run;
      driver::LayerRun conv_run;
      pack::TiledFm out;
      EXPECT_TRUE(runtime.run_fused_pad_conv(pack::to_tiled(input), pad,
                                             pack::pack_filters(filters),
                                             bias, rq, out, pad_run,
                                             conv_run));
    } else {
      driver::LayerRun r1;
      driver::LayerRun r2;
      const pack::TiledFm padded = runtime.run_pad_pool(
          pack::to_tiled(input), core::Opcode::kPad,
          {8, 18, 18}, 1, 1, -1, -1, r1);
      runtime.run_conv(padded, pack::pack_filters(filters), bias, rq, r2);
    }
    return dma.stats().bytes_to_fpga + dma.stats().bytes_to_dram;
  };
  const std::uint64_t fused = dma_bytes(true);
  const std::uint64_t separate = dma_bytes(false);
  EXPECT_LT(fused, separate);
  // The padded map (8*20*20-ish bytes in each direction) never moved.
  EXPECT_GT(separate - fused, 8u * 18 * 18);
}

TEST(FusedPadConv, RefusesWhenItDoesNotFitOnChip) {
  Rng rng(23);
  const nn::FeatureMapI8 input = random_fm({8, 32, 32}, rng);
  const nn::FilterBankI8 filters = random_filters({8, 8, 3, 3}, 0.5, rng);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 256;  // too small for raw + padded + ofm + weights
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun a;
  driver::LayerRun b;
  pack::TiledFm out;
  EXPECT_FALSE(runtime.run_fused_pad_conv(
      pack::to_tiled(input), nn::Padding::uniform(1),
      pack::pack_filters(filters), {}, nn::Requant{}, out, a, b));
}

TEST(FusedPadConv, NetworkRunFusionMatchesUnfusedNetworkRun) {
  Rng rng(24);
  const nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 32, .num_classes = 10});
  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  nn::FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.3);
  const quant::QuantizedModel model =
      quant::quantize_network(net, weights, {image});
  const nn::FeatureMapI8 input = quant::quantize_fm(image, model.input_exp);

  auto run_with = [&](bool fuse) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.bank_words = 8192;
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(
        acc, dram, dma,
        {.mode = driver::ExecMode::kCycle, .keep_activations = true,
         .fuse_pad_conv = fuse});
    return runtime.run_network(net, model, input);
  };
  const driver::NetworkRun fused = run_with(true);
  const driver::NetworkRun plain = run_with(false);
  EXPECT_EQ(fused.logits, plain.logits);
  ASSERT_EQ(fused.activations.size(), plain.activations.size());
  for (std::size_t i = 0; i < fused.activations.size(); ++i)
    EXPECT_EQ(fused.activations[i], plain.activations[i]) << "layer " << i;
  EXPECT_EQ(fused.layers.size(), plain.layers.size());

  std::uint64_t fused_dma = 0;
  std::uint64_t plain_dma = 0;
  for (std::size_t i = 0; i < fused.layers.size(); ++i) {
    fused_dma += fused.layers[i].dma.bytes_to_fpga +
                 fused.layers[i].dma.bytes_to_dram;
    plain_dma += plain.layers[i].dma.bytes_to_fpga +
                 plain.layers[i].dma.bytes_to_dram;
  }
  EXPECT_LT(fused_dma, plain_dma);
}

}  // namespace
}  // namespace tsca
