// Tests for the HLS runtime: kernels, FIFOs, barriers, both execution modes.
//
// These tests pin down the semantics everything else is built on:
//   * one kernel source runs identically under the thread and cycle domains;
//   * an II=1 streaming loop moves one item per cycle;
//   * registered FIFOs add one cycle of latency per hop;
//   * deadlocks are detected, kernel errors propagate.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "hls/system.hpp"

namespace tsca::hls {
namespace {

struct Msg {
  int value = 0;
  bool last = false;
};

Kernel producer(Domain& d, Fifo<Msg>& out, int count) {
  for (int i = 0; i < count; ++i) {
    co_await out.push({i, i == count - 1});
    co_await clk(d);
  }
}

Kernel consumer(Domain& d, Fifo<Msg>& in, std::vector<int>& sink) {
  for (;;) {
    Msg m = co_await in.pop();
    sink.push_back(m.value);
    co_await clk(d);
    if (m.last) break;
  }
}

Kernel relay(Domain& d, Fifo<Msg>& in, Fifo<Msg>& out) {
  for (;;) {
    Msg m = co_await in.pop();
    co_await out.push(m);
    co_await clk(d);
    if (m.last) break;
  }
}

Kernel slow_consumer(Domain& d, Fifo<Msg>& in, std::vector<int>& sink,
                     int cycles_per_item) {
  for (;;) {
    Msg m = co_await in.pop();
    sink.push_back(m.value);
    for (int c = 0; c < cycles_per_item; ++c) co_await clk(d);
    if (m.last) break;
  }
}

std::vector<int> expected_sequence(int count) {
  std::vector<int> v(static_cast<std::size_t>(count));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

class HlsBothModes : public ::testing::TestWithParam<Mode> {};

TEST_P(HlsBothModes, ProducerConsumerDeliversAllItemsInOrder) {
  System sys(GetParam());
  auto& q = sys.make_fifo<Msg>("q", 8);
  std::vector<int> sink;
  sys.spawn("producer", producer(sys.domain(), q, 500));
  sys.spawn("consumer", consumer(sys.domain(), q, sink));
  sys.run();
  EXPECT_EQ(sink, expected_sequence(500));
}

TEST_P(HlsBothModes, ThreeStagePipelineDeliversAllItems) {
  System sys(GetParam());
  auto& q1 = sys.make_fifo<Msg>("q1", 4);
  auto& q2 = sys.make_fifo<Msg>("q2", 4);
  std::vector<int> sink;
  sys.spawn("producer", producer(sys.domain(), q1, 300));
  sys.spawn("relay", relay(sys.domain(), q1, q2));
  sys.spawn("consumer", consumer(sys.domain(), q2, sink));
  sys.run();
  EXPECT_EQ(sink, expected_sequence(300));
}

TEST_P(HlsBothModes, KernelExceptionPropagates) {
  System sys(GetParam(), {.watchdog_ms = 2000});
  auto& q = sys.make_fifo<Msg>("q", 4);
  auto thrower = [](Domain& d, Fifo<Msg>& in) -> Kernel {
    Msg m = co_await in.pop();
    (void)m;
    co_await clk(d);
    throw ConfigError("boom");
  };
  sys.spawn("producer", producer(sys.domain(), q, 10));
  sys.spawn("thrower", thrower(sys.domain(), q));
  EXPECT_THROW(sys.run(), ConfigError);
}

TEST_P(HlsBothModes, BarrierSynchronizesParticipants) {
  constexpr int kParticipants = 4;
  constexpr int kRounds = 25;
  System sys(GetParam());
  auto& bar = sys.make_barrier("bar", kParticipants);
  // Each participant increments its own round counter; after the barrier all
  // counters must agree.  A mismatch detected by any participant is fatal.
  static thread_local int unused = 0;
  (void)unused;
  auto counters = std::make_shared<std::array<std::atomic<int>, 4>>();
  for (auto& c : *counters) c = 0;
  auto participant = [](Domain& d, Barrier& b,
                        std::shared_ptr<std::array<std::atomic<int>, 4>> ctrs,
                        int id) -> Kernel {
    for (int round = 0; round < kRounds; ++round) {
      (*ctrs)[static_cast<std::size_t>(id)].fetch_add(1);
      co_await clk(d);
      co_await b.arrive_and_wait();
      for (const auto& c : *ctrs) {
        TSCA_CHECK(c.load() == round + 1,
                   "barrier round skew: " << c.load() << " vs " << round + 1);
      }
      co_await b.arrive_and_wait();
    }
  };
  for (int id = 0; id < kParticipants; ++id)
    sys.spawn("p" + std::to_string(id),
              participant(sys.domain(), bar, counters, id));
  EXPECT_NO_THROW(sys.run());
}

TEST_P(HlsBothModes, DeadlockIsDetected) {
  System sys(GetParam(), {.max_cycles = 100'000, .watchdog_ms = 300});
  auto& q = sys.make_fifo<Msg>("q", 4);
  std::vector<int> sink;
  sys.spawn("consumer", consumer(sys.domain(), q, sink));  // nobody pushes
  EXPECT_THROW(sys.run(), DeadlockError);
}

INSTANTIATE_TEST_SUITE_P(Modes, HlsBothModes,
                         ::testing::Values(Mode::kThread, Mode::kCycle),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return info.param == Mode::kThread ? "thread"
                                                              : "cycle";
                         });

// --- cycle-accurate timing ----------------------------------------------

TEST(HlsCycleTiming, StreamingLoopHasInitiationIntervalOne) {
  System sys(Mode::kCycle);
  auto& q = sys.make_fifo<Msg>("q", 8);
  std::vector<int> sink;
  constexpr int kItems = 1000;
  sys.spawn("producer", producer(sys.domain(), q, kItems));
  sys.spawn("consumer", consumer(sys.domain(), q, sink));
  const auto result = sys.run();
  // One item per cycle plus constant pipeline fill/drain.
  EXPECT_GE(result.cycles, static_cast<std::uint64_t>(kItems));
  EXPECT_LE(result.cycles, static_cast<std::uint64_t>(kItems) + 10);
}

TEST(HlsCycleTiming, SlowConsumerThrottlesProducerViaBackpressure) {
  System sys(Mode::kCycle);
  auto& q = sys.make_fifo<Msg>("q", 2);
  std::vector<int> sink;
  constexpr int kItems = 500;
  constexpr int kCyclesPerItem = 3;
  sys.spawn("producer", producer(sys.domain(), q, kItems));
  sys.spawn("consumer",
            slow_consumer(sys.domain(), q, sink, kCyclesPerItem));
  const auto result = sys.run();
  EXPECT_EQ(sink.size(), static_cast<std::size_t>(kItems));
  EXPECT_GE(result.cycles, static_cast<std::uint64_t>(kItems) * kCyclesPerItem);
  EXPECT_LE(result.cycles,
            static_cast<std::uint64_t>(kItems) * (kCyclesPerItem + 1) + 20);
}

TEST(HlsCycleTiming, RegisteredFifoAddsOneCycleLatencyPerHop) {
  // Measure a single item through N relay hops: latency grows with hops.
  auto run_hops = [](int hops) {
    System sys(Mode::kCycle);
    std::vector<int> sink;
    Fifo<Msg>* prev = &sys.make_fifo<Msg>("q0", 4);
    sys.spawn("producer", producer(sys.domain(), *prev, 1));
    for (int h = 0; h < hops; ++h) {
      auto& next = sys.make_fifo<Msg>("q" + std::to_string(h + 1), 4);
      sys.spawn("relay" + std::to_string(h), relay(sys.domain(), *prev, next));
      prev = &next;
    }
    sys.spawn("consumer", consumer(sys.domain(), *prev, sink));
    return sys.run().cycles;
  };
  const std::uint64_t short_chain = run_hops(1);
  const std::uint64_t long_chain = run_hops(5);
  EXPECT_EQ(long_chain - short_chain, 4u);
}

TEST(HlsCycleTiming, FifoStatsCountTraffic) {
  System sys(Mode::kCycle);
  auto& q = sys.make_fifo<Msg>("q", 8);
  std::vector<int> sink;
  sys.spawn("producer", producer(sys.domain(), q, 64));
  sys.spawn("consumer", consumer(sys.domain(), q, sink));
  sys.run();
  EXPECT_EQ(q.stats().pushes, 64u);
  EXPECT_EQ(q.stats().pops, 64u);
}

TEST(HlsCycleTiming, RunawaySimulationHitsCycleLimit) {
  System sys(Mode::kCycle, {.max_cycles = 1000});
  auto spinner = [](Domain& d) -> Kernel {
    for (;;) co_await clk(d);
  };
  sys.spawn("spinner", spinner(sys.domain()));
  EXPECT_THROW(sys.run(), Error);
}

}  // namespace
}  // namespace tsca::hls
