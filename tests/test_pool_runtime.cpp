// PoolRuntime determinism: simulated cycle counts, hardware counters, DMA
// statistics, and output feature maps must be bit-identical to the serial
// Runtime for any worker count — the pool changes wall-clock, never results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/accelerator.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "pack/weight_pack.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  return bank;
}

void expect_same_run(const driver::LayerRun& serial,
                     const driver::LayerRun& pooled) {
  EXPECT_EQ(serial.cycles, pooled.cycles);
  EXPECT_EQ(serial.stripes, pooled.stripes);
  EXPECT_EQ(serial.batches, pooled.batches);
  EXPECT_EQ(serial.macs, pooled.macs);
  EXPECT_EQ(serial.counters, pooled.counters);
  EXPECT_EQ(serial.dma, pooled.dma);
}

core::ArchConfig striped_config(int instances = 1) {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;  // small banks force stripes + weight chunks
  cfg.instances = instances;
  return cfg;
}

// Worker counts below, equal to, and above the unit count all merge to the
// same result.
class PoolWorkers : public ::testing::TestWithParam<int> {};

TEST_P(PoolWorkers, ConvMatchesSerial) {
  Rng rng(101);
  const pack::TiledFm input = pack::to_tiled(random_fm({16, 28, 28}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, -4);
  const nn::Requant rq{.shift = 6, .relu = true};

  for (const int instances : {1, 2}) {
    const core::ArchConfig cfg = striped_config(instances);
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime serial(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    driver::LayerRun serial_run;
    const pack::TiledFm serial_out =
        serial.run_conv(input, packed, bias, rq, serial_run);

    driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
    driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kCycle});
    driver::LayerRun pooled_run;
    const pack::TiledFm pooled_out =
        pooled.run_conv(input, packed, bias, rq, pooled_run);

    EXPECT_GT(serial_run.stripes, 1);
    EXPECT_EQ(serial_out, pooled_out) << "instances=" << instances;
    expect_same_run(serial_run, pooled_run);
  }
}

TEST_P(PoolWorkers, MaxPoolMatchesSerial) {
  Rng rng(102);
  const nn::FeatureMapI8 image = random_fm({8, 14, 14}, rng);
  const nn::FmShape out_shape{8, 7, 7};

  const core::ArchConfig cfg = striped_config();
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime serial(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun serial_run;
  const pack::TiledFm serial_out =
      serial.run_pad_pool(pack::to_tiled(image), core::Opcode::kPool,
                          out_shape, 2, 2, 0, 0, serial_run);

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun pooled_run;
  const pack::TiledFm pooled_out =
      pooled.run_pad_pool(pack::to_tiled(image), core::Opcode::kPool,
                          out_shape, 2, 2, 0, 0, pooled_run);

  EXPECT_EQ(serial_out, pooled_out);
  expect_same_run(serial_run, pooled_run);
}

TEST_P(PoolWorkers, ConvBatchMatchesSerial) {
  Rng rng(103);
  constexpr int kBatch = 5;
  std::vector<pack::TiledFm> images;
  for (int i = 0; i < kBatch; ++i)
    images.push_back(pack::to_tiled(random_fm({16, 28, 28}, rng)));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, 3);
  const nn::Requant rq{.shift = 6, .relu = true};

  const core::ArchConfig cfg = striped_config();
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime serial(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun serial_run;
  const std::vector<pack::TiledFm> serial_out =
      serial.run_conv_batch(images, packed, bias, rq, serial_run);

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun pooled_run;
  const std::vector<pack::TiledFm> pooled_out =
      pooled.run_conv_batch(images, packed, bias, rq, pooled_run);

  ASSERT_EQ(serial_out.size(), pooled_out.size());
  for (int i = 0; i < kBatch; ++i)
    EXPECT_EQ(serial_out[static_cast<std::size_t>(i)],
              pooled_out[static_cast<std::size_t>(i)])
        << "image " << i;
  expect_same_run(serial_run, pooled_run);
}

TEST_P(PoolWorkers, ServeMatchesSerialPerRequest) {
  Rng rng(104);
  nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 16, .num_classes = 10});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  quant::prune_weights(net, weights, quant::vgg16_han_profile());
  nn::FeatureMapF calib(net.input_shape());
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
  const quant::QuantizedModel model =
      quant::quantize_network(net, weights, {calib});

  constexpr int kRequests = 3;
  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < kRequests; ++i)
    inputs.push_back(random_fm(net.input_shape(), rng));

  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const driver::RuntimeOptions options{.mode = driver::ExecMode::kCycle};
  std::vector<driver::NetworkRun> serial;
  for (const nn::FeatureMapI8& input : inputs) {
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, options);
    serial.push_back(runtime.run_network(net, model, input));
  }

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, options);
  const std::vector<driver::NetworkRun> served =
      pooled.serve(net, model, inputs);

  ASSERT_EQ(served.size(), serial.size());
  for (int i = 0; i < kRequests; ++i) {
    const driver::NetworkRun& a = serial[static_cast<std::size_t>(i)];
    const driver::NetworkRun& b = served[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.flat_output, b.flat_output) << "request " << i;
    EXPECT_EQ(a.logits, b.logits) << "request " << i;
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
      SCOPED_TRACE("request " + std::to_string(i) + " layer " +
                   a.layers[l].name);
      expect_same_run(a.layers[l], b.layers[l]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, PoolWorkers, ::testing::Values(1, 2, 8),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// Workers genuinely overlap: 8 sleeping units on 8 workers finish in far
// less than 8 serial sleeps.  (Sleeps overlap even on a single CPU, so this
// holds on any host.)
TEST(AcceleratorPool, RunsUnitsConcurrently) {
  driver::AcceleratorPool pool(core::ArchConfig::k256_opt(), {.workers = 8});
  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(8, [](driver::AcceleratorPool::Context&, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000));  // serial would be 1.6s
}

TEST(AcceleratorPool, PropagatesTaskExceptions) {
  driver::AcceleratorPool pool(core::ArchConfig::k256_opt(), {.workers = 2});
  EXPECT_THROW(pool.parallel_for(
                   8,
                   [](driver::AcceleratorPool::Context&, std::size_t i) {
                     if (i == 3) throw std::runtime_error("unit 3 failed");
                   }),
               std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> done{0};
  pool.parallel_for(4, [&](driver::AcceleratorPool::Context&, std::size_t) {
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace tsca
