// Instruction-set validation and failure injection.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/isa.hpp"

namespace tsca::core {
namespace {

ArchConfig cfg4() {
  ArchConfig cfg = ArchConfig::k256_opt();
  cfg.bank_words = 1024;
  return cfg;
}

ConvInstr good_conv() {
  ConvInstr c;
  c.ifm_base = 0;
  c.ifm_tiles_x = 4;
  c.ifm_tiles_y = 4;
  c.ifm_channels = 8;
  c.weight_base = 200;
  c.ofm_base = 100;
  c.ofm_tiles_x = 4;
  c.ofm_tiles_y = 4;
  c.oc0 = 0;
  c.active_filters = 4;
  c.kernel_h = c.kernel_w = 3;
  c.shift = 6;
  return c;
}

PadPoolInstr good_pool() {
  PadPoolInstr p;
  p.ifm_base = 0;
  p.ifm_tiles_x = 4;
  p.ifm_tiles_y = 4;
  p.ifm_h = p.ifm_w = 16;
  p.channels = 8;
  p.ofm_base = 64;
  p.ofm_tiles_x = 2;
  p.ofm_tiles_y = 2;
  p.ofm_h = p.ofm_w = 8;
  p.win = 2;
  p.stride = 2;
  return p;
}

TEST(IsaValidation, AcceptsWellFormedInstructions) {
  EXPECT_NO_THROW(
      validate_instruction(Instruction::make_conv(good_conv()), cfg4(), 16));
  EXPECT_NO_THROW(
      validate_instruction(Instruction::make_pool(good_pool()), cfg4()));
  EXPECT_NO_THROW(validate_instruction(Instruction::halt(), cfg4()));
  PadPoolInstr pad = good_pool();
  pad.win = 1;
  pad.stride = 1;
  pad.offset_y = -1;
  pad.ofm_tiles_x = pad.ofm_tiles_y = 5;
  pad.ofm_h = pad.ofm_w = 18;
  EXPECT_NO_THROW(
      validate_instruction(Instruction::make_pad(pad), cfg4()));
}

TEST(IsaValidation, RejectsEachMalformedConvField) {
  const ArchConfig cfg = cfg4();
  auto expect_bad = [&](auto mutate) {
    ConvInstr c = good_conv();
    mutate(c);
    EXPECT_THROW(validate_instruction(Instruction::make_conv(c), cfg, 16),
                 InstructionError);
  };
  expect_bad([](ConvInstr& c) { c.ifm_tiles_x = 0; });
  expect_bad([](ConvInstr& c) { c.ifm_channels = 0; });
  expect_bad([](ConvInstr& c) { c.ofm_tiles_y = -1; });
  expect_bad([](ConvInstr& c) { c.kernel_h = 0; });
  expect_bad([](ConvInstr& c) { c.kernel_h = 99; });  // larger than stripe
  expect_bad([](ConvInstr& c) { c.active_filters = 0; });
  expect_bad([](ConvInstr& c) { c.active_filters = 5; });
  expect_bad([](ConvInstr& c) { c.oc0 = 2; });   // not a multiple of group
  expect_bad([](ConvInstr& c) { c.oc0 = -4; });
  expect_bad([](ConvInstr& c) { c.shift = -1; });
  expect_bad([](ConvInstr& c) { c.shift = 32; });
  expect_bad([](ConvInstr& c) { c.ifm_base = -1; });
  expect_bad([](ConvInstr& c) { c.ifm_base = 1020; });  // region overflows
  expect_bad([](ConvInstr& c) { c.weight_base = 1023; });
}

TEST(IsaValidation, RejectsEachMalformedPoolField) {
  const ArchConfig cfg = cfg4();
  auto expect_bad = [&](auto mutate, Opcode op = Opcode::kPool) {
    PadPoolInstr p = good_pool();
    mutate(p);
    Instruction instr =
        op == Opcode::kPool ? Instruction::make_pool(p)
                            : Instruction::make_pad(p);
    EXPECT_THROW(validate_instruction(instr, cfg), InstructionError);
  };
  expect_bad([](PadPoolInstr& p) { p.channels = 0; });
  expect_bad([](PadPoolInstr& p) { p.ifm_h = 0; });
  expect_bad([](PadPoolInstr& p) { p.ifm_h = 99; });  // exceeds tile grid
  expect_bad([](PadPoolInstr& p) { p.win = 0; });
  expect_bad([](PadPoolInstr& p) { p.stride = 0; });
  expect_bad([](PadPoolInstr& p) { p.win = 20; });    // > input
  expect_bad([](PadPoolInstr& p) { p.ofm_base = 1020; });
  // PAD must be win=1 stride=1.
  expect_bad([](PadPoolInstr& p) { p.win = 2; }, Opcode::kPad);
}

TEST(IsaValidation, OpcodeNames) {
  EXPECT_STREQ(opcode_name(Opcode::kConv), "CONV");
  EXPECT_STREQ(opcode_name(Opcode::kPad), "PAD");
  EXPECT_STREQ(opcode_name(Opcode::kPool), "POOL");
  EXPECT_STREQ(opcode_name(Opcode::kHalt), "HALT");
}

TEST(AcceleratorValidation, RejectsBatchBeforeExecuting) {
  Accelerator acc(cfg4());
  ConvInstr bad = good_conv();
  bad.ifm_base = 4096;  // outside the bank
  EXPECT_THROW(
      acc.run_batch({Instruction::make_conv(bad)}, hls::Mode::kCycle),
      InstructionError);
  // Nothing ran: counters untouched.
  EXPECT_EQ(snapshot(acc.counters()).conv_instrs, 0);
}

TEST(ArchConfigValidation, RejectsBadConfigs) {
  auto bad = [](auto mutate) {
    ArchConfig cfg = ArchConfig::k256_opt();
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), Error);
  };
  bad([](ArchConfig& c) { c.lanes = 0; });
  bad([](ArchConfig& c) { c.lanes = 5; });
  bad([](ArchConfig& c) { c.group = 2; });  // lanes != group unsupported
  bad([](ArchConfig& c) { c.instances = 0; });
  bad([](ArchConfig& c) { c.bank_words = 1; });
  bad([](ArchConfig& c) { c.fifo_depth = 1; });
  bad([](ArchConfig& c) { c.clock_mhz = 0.0; });
}

TEST(ArchConfigVariants, PaperParametersAndThroughput) {
  EXPECT_EQ(ArchConfig::k16_unopt().macs_per_cycle(), 16);
  EXPECT_EQ(ArchConfig::k256_unopt().macs_per_cycle(), 256);
  EXPECT_EQ(ArchConfig::k256_opt().macs_per_cycle(), 256);
  EXPECT_EQ(ArchConfig::k512_opt().macs_per_cycle(), 512);
  EXPECT_DOUBLE_EQ(ArchConfig::k256_opt().clock_mhz, 150.0);
  EXPECT_DOUBLE_EQ(ArchConfig::k512_opt().clock_mhz, 120.0);
  EXPECT_DOUBLE_EQ(ArchConfig::k16_unopt().clock_mhz, 55.0);
  for (const ArchConfig& cfg : ArchConfig::paper_variants())
    EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace tsca::core
