// Persistent compile cache: key derivation, hit/miss behaviour, corruption
// and version-skew fallback, concurrent writers, registry integration, and
// the property everything else rests on — a cached program is bit-exact
// with a fresh compile, in every execution mode, on every zoo family.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/compile_cache.hpp"
#include "driver/program.hpp"
#include "driver/program_registry.hpp"
#include "driver/runtime.hpp"
#include "nn/zoo.hpp"
#include "quant/quantize.hpp"
#include "sim/dma.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

// A fresh cache directory per test, under the test's CWD (the build tree),
// removed on teardown.
class CompileCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::string(".tsca-cache-test-") + info->test_suite_name() + "-" +
           info->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

nn::FeatureMapI8 make_input(const nn::FmShape& shape, std::uint64_t seed) {
  Rng rng(seed);
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-64, 64));
  return fm;
}

core::ArchConfig small_config() {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 2048;  // small banks force striping even on 16x16 maps
  return cfg;
}

driver::NetworkRun run_program(const driver::NetworkProgram& program,
                               const nn::FeatureMapI8& input,
                               driver::ExecMode mode) {
  core::Accelerator acc(program.config());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma,
                          {.mode = mode, .keep_activations = true});
  return runtime.run_network(program, input);
}

struct ZooCase {
  const char* name;
  zoo::ZooModel (*make)(std::uint64_t seed);
  std::uint64_t seed;
};

const ZooCase kZooCases[] = {
    {"residual_cifar", zoo::make_residual_cifar, 7},
    {"mobile_dw", zoo::make_mobile_depthwise, 11},
    {"ternary_mlp", zoo::make_ternary_mlp, 13},
};

// --- key derivation ------------------------------------------------------

TEST_F(CompileCacheTest, KeyIsDeterministicAndInputSensitive) {
  const zoo::ZooModel m = zoo::make_ternary_mlp(13);
  const core::ArchConfig cfg = small_config();

  const std::uint64_t k1 = driver::CompileCache::key(m.net, m.model, cfg);
  const std::uint64_t k2 = driver::CompileCache::key(m.net, m.model, cfg);
  EXPECT_EQ(k1, k2);

  // A different seed means different weights: the key must move.
  const zoo::ZooModel other = zoo::make_ternary_mlp(14);
  EXPECT_NE(k1, driver::CompileCache::key(other.net, other.model, cfg));

  // A different architecture plans differently: the key must move.
  core::ArchConfig cfg2 = cfg;
  cfg2.bank_words *= 2;
  EXPECT_NE(k1, driver::CompileCache::key(m.net, m.model, cfg2));

  // Compile options are part of the recipe too.
  EXPECT_NE(k1, driver::CompileCache::key(m.net, m.model, cfg,
                                          {.fuse_pad_conv = false}));

  // The config *name* is cosmetic — same planning inputs, same key.
  core::ArchConfig renamed = cfg;
  renamed.name = "renamed";
  EXPECT_EQ(k1, driver::CompileCache::key(m.net, m.model, renamed));
}

// --- hit / miss / store --------------------------------------------------

TEST_F(CompileCacheTest, MissThenStoreThenHit) {
  const zoo::ZooModel m = zoo::make_residual_cifar(7);
  const core::ArchConfig cfg = small_config();
  driver::CompileCache cache(dir_);
  const std::uint64_t key = driver::CompileCache::key(m.net, m.model, cfg);

  EXPECT_FALSE(cache.load(key, m.net, cfg).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const driver::NetworkProgram fresh =
      driver::NetworkProgram::compile(m.net, m.model, cfg);
  ASSERT_TRUE(cache.store(key, fresh));
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_TRUE(std::filesystem::exists(cache.path_for(key)));

  const std::optional<driver::NetworkProgram> cached =
      cache.load(key, m.net, cfg);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);

  // The artifact round-trips: identical DDR image, steps, and slots — only
  // the stamp is fresh (so runtimes restage, not reuse a stale residency).
  EXPECT_EQ(cached->ddr_image(), fresh.ddr_image());
  EXPECT_EQ(cached->steps().size(), fresh.steps().size());
  EXPECT_EQ(cached->slot_count(), fresh.slot_count());
  EXPECT_NE(cached->stamp(), fresh.stamp());
}

TEST_F(CompileCacheTest, GetOrCompileStoresOnMissAndLoadsOnHit) {
  const zoo::ZooModel m = zoo::make_mobile_depthwise(11);
  const core::ArchConfig cfg = small_config();
  driver::CompileCache cache(dir_);

  const driver::NetworkProgram first =
      cache.get_or_compile(m.net, m.model, cfg);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);

  const driver::NetworkProgram second =
      cache.get_or_compile(m.net, m.model, cfg);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(second.ddr_image(), first.ddr_image());
}

// --- the property everything rests on: bit-exact execution ---------------

class CompileCacheZoo : public CompileCacheTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(CompileCacheZoo, CachedProgramExecutesBitExactly) {
  const ZooCase& zc = kZooCases[GetParam()];
  SCOPED_TRACE(zc.name);
  const zoo::ZooModel m = zc.make(zc.seed);
  const core::ArchConfig cfg = small_config();
  driver::CompileCache cache(dir_);

  const driver::NetworkProgram fresh =
      driver::NetworkProgram::compile(m.net, m.model, cfg);
  const std::uint64_t key = driver::CompileCache::key(m.net, m.model, cfg);
  ASSERT_TRUE(cache.store(key, fresh));
  const std::optional<driver::NetworkProgram> cached =
      cache.load(key, m.net, cfg);
  ASSERT_TRUE(cached.has_value());

  const nn::FeatureMapI8 input = make_input(m.net.input_shape(), 0x900);
  for (const driver::ExecMode mode :
       {driver::ExecMode::kCycle, driver::ExecMode::kFast}) {
    const driver::NetworkRun a = run_program(fresh, input, mode);
    const driver::NetworkRun b = run_program(*cached, input, mode);
    ASSERT_EQ(a.logits, b.logits);
    ASSERT_EQ(a.activations.size(), b.activations.size());
    for (std::size_t i = 0; i < a.activations.size(); ++i)
      ASSERT_EQ(a.activations[i], b.activations[i]) << "activation " << i;
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
      ASSERT_EQ(a.layers[i].cycles, b.layers[i].cycles) << "layer " << i;
      ASSERT_EQ(a.layers[i].counters, b.layers[i].counters) << "layer " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooFamilies, CompileCacheZoo,
                         ::testing::Range(0, 3));

// --- corruption and version skew -----------------------------------------

TEST_F(CompileCacheTest, CorruptFileFallsBackToCompile) {
  const zoo::ZooModel m = zoo::make_ternary_mlp(13);
  const core::ArchConfig cfg = small_config();
  driver::CompileCache cache(dir_);
  const std::uint64_t key = driver::CompileCache::key(m.net, m.model, cfg);

  const driver::NetworkProgram fresh =
      driver::NetworkProgram::compile(m.net, m.model, cfg);
  ASSERT_TRUE(cache.store(key, fresh));

  // Truncate the artifact mid-payload: the bounds-checked parser must treat
  // it as a miss, never crash or return a half-built program.
  const std::string path = cache.path_for(key);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_FALSE(cache.load(key, m.net, cfg).has_value());
  EXPECT_EQ(cache.stats().invalid, 1u);

  // Garbage bytes (right size, wrong content) fail the magic check.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string junk(128, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  EXPECT_FALSE(cache.load(key, m.net, cfg).has_value());

  // get_or_compile recompiles and heals the entry.
  const driver::NetworkProgram healed =
      cache.get_or_compile(m.net, m.model, cfg);
  EXPECT_EQ(healed.ddr_image(), fresh.ddr_image());
  EXPECT_TRUE(cache.load(key, m.net, cfg).has_value());
}

TEST_F(CompileCacheTest, VersionSkewInvalidates) {
  const zoo::ZooModel m = zoo::make_ternary_mlp(13);
  const core::ArchConfig cfg = small_config();
  driver::CompileCache cache(dir_);
  const std::uint64_t key = driver::CompileCache::key(m.net, m.model, cfg);

  // Hand-craft a file with the right magic but a stale version tag — what a
  // cache written by an older build looks like after the tag was bumped.
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(cache.path_for(key), std::ios::binary | std::ios::trunc);
    out.write("TSCAPROG", 8);
    const std::string stale = "tsca-prog-v0";
    const std::uint64_t n = stale.size();
    out.write(reinterpret_cast<const char*>(&n), 8);  // LE on every target
    out.write(stale.data(), static_cast<std::streamsize>(stale.size()));
  }
  EXPECT_FALSE(cache.load(key, m.net, cfg).has_value());
  EXPECT_EQ(cache.stats().invalid, 1u);
}

// --- concurrent writers --------------------------------------------------

TEST_F(CompileCacheTest, ConcurrentWritersPublishWholeFiles) {
  const zoo::ZooModel m = zoo::make_ternary_mlp(13);
  const core::ArchConfig cfg = small_config();

  // Several caches (think: several processes) racing get_or_compile on the
  // same directory.  Rename-on-write means whichever store lands last, the
  // published file is always one writer's complete artifact.
  constexpr int kWriters = 4;
  std::vector<driver::NetworkProgram> results;
  results.reserve(kWriters);
  std::vector<std::thread> threads;
  std::mutex mu;
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&] {
      driver::CompileCache cache(dir_);
      driver::NetworkProgram p = cache.get_or_compile(m.net, m.model, cfg);
      const std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(p));
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(results.size(), static_cast<std::size_t>(kWriters));
  for (int i = 1; i < kWriters; ++i)
    EXPECT_EQ(results[static_cast<std::size_t>(i)].ddr_image(),
              results[0].ddr_image());

  // The surviving file is valid.
  driver::CompileCache cache(dir_);
  const std::uint64_t key = driver::CompileCache::key(m.net, m.model, cfg);
  EXPECT_TRUE(cache.load(key, m.net, cfg).has_value());
}

// --- registry integration ------------------------------------------------

TEST_F(CompileCacheTest, RegistryConsultsCacheAcrossInstances) {
  const zoo::ZooModel m = zoo::make_residual_cifar(7);
  const core::ArchConfig cfg = small_config();
  driver::CompileCache cache(dir_);
  const nn::FeatureMapI8 input = make_input(m.net.input_shape(), 0x901);

  std::vector<std::int8_t> first_logits;
  {
    driver::ProgramRegistry registry(cfg, {.compile_cache = &cache});
    registry.add_model("res", m.net, m.model);
    const driver::ProgramHandle h = registry.acquire("res");
    first_logits =
        run_program(h.program(), input, driver::ExecMode::kFast).logits;
  }
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // A second registry (a later process, conceptually) hits the cache — no
  // recompile — and serves identical results.
  {
    driver::ProgramRegistry registry(cfg, {.compile_cache = &cache});
    registry.add_model("res", m.net, m.model);
    const driver::ProgramHandle h = registry.acquire("res");
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(registry.stats().compiles, 1u);  // a materialization, not a hit
    EXPECT_EQ(
        run_program(h.program(), input, driver::ExecMode::kFast).logits,
        first_logits);
  }
}

}  // namespace
}  // namespace tsca
