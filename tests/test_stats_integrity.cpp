// Statistics-integrity regressions:
//  - LayerRun reuse: entry points must fully reset the caller's LayerRun, so
//    reusing one across calls cannot accumulate stale batches/counters/DMA.
//  - DmaStats subtraction must refuse to underflow (a reset inside a
//    measurement window used to wrap the unsigned deltas into garbage).
//  - PerfModel position counts must stay 64-bit: tiles_y × tiles_x of a
//    large feature map exceeds 2^31, and the old int narrowing flipped the
//    zero-skip statistics negative.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/perf_model.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/runtime.hpp"
#include "pack/weight_pack.hpp"
#include "sim/dma.hpp"
#include "sim/dram.hpp"
#include "sim/sram.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  return bank;
}

core::ArchConfig striped_config() {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;  // small banks force stripes + weight chunks
  return cfg;
}

void expect_equal_runs(const driver::LayerRun& a, const driver::LayerRun& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.stripes, b.stripes);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.dma, b.dma);
}

// Calling run_conv twice with the same LayerRun must report the same
// statistics both times — the second call used to accumulate batches and
// MACs on top of the first.
TEST(LayerRunReuse, ConvSecondCallMatchesFirst) {
  Rng rng(11);
  const pack::TiledFm input = pack::to_tiled(random_fm({8, 20, 20}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({8, 8, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(8, 2);
  const nn::Requant rq{.shift = 6, .relu = true};

  core::Accelerator acc(striped_config());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime rt(acc, dram, dma, {.mode = driver::ExecMode::kCycle});

  driver::LayerRun run;
  rt.run_conv(input, packed, bias, rq, run);
  const driver::LayerRun first = run;
  EXPECT_GT(first.batches, 0);
  EXPECT_GT(first.dma.transfers, 0u);

  rt.run_conv(input, packed, bias, rq, run);
  expect_equal_runs(first, run);
}

TEST(LayerRunReuse, PadPoolSecondCallMatchesFirst) {
  Rng rng(12);
  const pack::TiledFm input = pack::to_tiled(random_fm({8, 14, 14}, rng));
  core::Accelerator acc(striped_config());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime rt(acc, dram, dma, {.mode = driver::ExecMode::kCycle});

  driver::LayerRun run;
  rt.run_pad_pool(input, core::Opcode::kPool, {8, 7, 7}, 2, 2, 0, 0, run);
  const driver::LayerRun first = run;
  rt.run_pad_pool(input, core::Opcode::kPool, {8, 7, 7}, 2, 2, 0, 0, run);
  expect_equal_runs(first, run);
}

TEST(LayerRunReuse, ConvBatchSecondCallMatchesFirst) {
  Rng rng(13);
  std::vector<pack::TiledFm> images;
  for (int i = 0; i < 3; ++i)
    images.push_back(pack::to_tiled(random_fm({8, 12, 12}, rng)));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({8, 8, 3, 3}, 0.4, rng));
  const std::vector<std::int32_t> bias(8, 0);
  const nn::Requant rq{.shift = 6, .relu = false};

  core::Accelerator acc(striped_config());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime rt(acc, dram, dma, {.mode = driver::ExecMode::kCycle});

  driver::LayerRun run;
  rt.run_conv_batch(images, packed, bias, rq, run);
  const driver::LayerRun first = run;
  rt.run_conv_batch(images, packed, bias, rq, run);
  expect_equal_runs(first, run);
}

// The pooled runtime resets too — and a run dirtied by a previous (serial)
// layer must not leak into the pooled statistics.
TEST(LayerRunReuse, PoolRuntimeResetsDirtyRun) {
  Rng rng(14);
  const pack::TiledFm input = pack::to_tiled(random_fm({8, 20, 20}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({8, 8, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(8, 1);
  const nn::Requant rq{.shift = 6, .relu = true};

  driver::AcceleratorPool pool(striped_config(), {.workers = 2});
  driver::PoolRuntime rt(pool, {.mode = driver::ExecMode::kCycle});

  driver::LayerRun run;
  rt.run_conv(input, packed, bias, rq, run);
  const driver::LayerRun first = run;
  run.batches = 999;  // pre-dirtied caller state must not survive
  run.macs = -5;
  rt.run_conv(input, packed, bias, rq, run);
  expect_equal_runs(first, run);
}

// DmaStats{after} - DmaStats{before} must throw instead of wrapping when a
// counter moved backwards — the classic misuse is reset_stats() between the
// snapshot and the subtraction.
TEST(DmaStatsGuard, SubtractionRefusesUnderflow) {
  sim::Dram dram(1u << 20);
  sim::DmaEngine dma(dram);
  sim::SramBank bank("b", 256);

  dma.to_bank(bank, 0, 0, 64);
  const sim::DmaStats before = dma.stats();
  EXPECT_EQ(before.transfers, 1u);

  dma.reset_stats();  // the misuse: rollback inside a measurement window
  dma.to_bank(bank, 0, 0, 16);
  EXPECT_THROW(
      {
        const sim::DmaStats delta = dma.stats() - before;
        (void)delta;
      },
      Error);

  // A well-ordered window still subtracts cleanly.
  const sim::DmaStats start = dma.stats();
  dma.to_bank(bank, 0, 0, 32);
  const sim::DmaStats delta = dma.stats() - start;
  EXPECT_EQ(delta.transfers, 1u);
  EXPECT_EQ(delta.bytes_to_fpga, 32u);
}

// tiles_y × tiles_x of this map is ~2.62e9 > 2^31.  The old int narrowing
// of positions_total made weight_cmds/macs_performed go negative.
TEST(PerfModelOverflow, PositionCountStaysInt64) {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 1'000'000;  // keep the stripe count manageable
  const driver::PerfModel model(cfg);

  const nn::FmShape in{1, 160'000, 262'144};  // 40000 × 65536 output tiles
  nn::FilterBankI8 bank({1, 1, 1, 1});
  bank.at(0, 0, 0, 0) = 1;  // one nonzero weight → one command per position
  const driver::ConvPerf perf = model.conv_layer(in, pack::pack_filters(bank));

  const std::int64_t positions = 40'000LL * 65'536LL;
  ASSERT_GT(positions, static_cast<std::int64_t>(INT32_MAX));
  // Lane 0 carries the only channel (1 cmd/position); the three channel-less
  // lanes emit one end-of-position marker each.
  EXPECT_EQ(perf.weight_cmds, 4 * positions);
  EXPECT_EQ(perf.weight_bubbles, 3 * positions);
  EXPECT_EQ(perf.macs_performed, 16 * positions);
  EXPECT_GT(perf.cycles, 0);
}

}  // namespace
}  // namespace tsca
