// Additional HLS runtime semantics: seeding, polling, port discipline,
// stats, and misuse detection.
#include <gtest/gtest.h>

#include "hls/system.hpp"

namespace tsca::hls {
namespace {

struct Msg {
  int value = 0;
  bool last = false;
};

TEST(FifoSeed, VisibleFromFirstCycleAndBoundedByCapacity) {
  System sys(Mode::kCycle);
  auto& q = sys.make_fifo<Msg>("q", 3);
  EXPECT_TRUE(q.seed({1, false}));
  EXPECT_TRUE(q.seed({2, false}));
  EXPECT_TRUE(q.seed({3, true}));
  EXPECT_FALSE(q.seed({4, false}));  // full

  std::vector<int> sink;
  auto consumer = [](Domain& d, Fifo<Msg>& in,
                     std::vector<int>& out) -> Kernel {
    for (;;) {
      Msg m = co_await in.pop();
      out.push_back(m.value);
      co_await clk(d);
      if (m.last) break;
    }
  };
  sys.spawn("consumer", consumer(sys.domain(), q, sink));
  const auto result = sys.run();
  EXPECT_EQ(sink, (std::vector<int>{1, 2, 3}));
  // One item per cycle from cycle 1: 3 items in ~4 cycles.
  EXPECT_LE(result.cycles, 6u);
}

TEST(FifoPoll, CycleModeRespectsVisibilityAndPortLimit) {
  System sys(Mode::kCycle);
  auto& q = sys.make_fifo<Msg>("q", 8);
  std::vector<int> polled;
  auto kernel = [](Domain& d, Fifo<Msg>& fifo,
                   std::vector<int>& out) -> Kernel {
    // Push two items in one cycle? No — port limit: push, clk, push.
    co_await fifo.push({10, false});
    co_await clk(d);
    co_await fifo.push({20, false});
    // Pushed this cycle: not yet visible.
    Msg m;
    if (fifo.poll(m)) out.push_back(m.value);  // sees only item 1
    co_await clk(d);
    // Both visible now, but one pop per cycle.
    if (fifo.poll(m)) out.push_back(m.value);
    if (fifo.poll(m)) out.push_back(m.value);  // port already used
    co_await clk(d);
    if (fifo.poll(m)) out.push_back(m.value);
  };
  sys.spawn("k", kernel(sys.domain(), q, polled));
  sys.run();
  EXPECT_EQ(polled, (std::vector<int>{10, 20}));
}

TEST(FifoPoll, ThreadModeIsNonBlocking) {
  System sys(Mode::kThread);
  auto& q = sys.make_fifo<Msg>("q", 4);
  std::vector<int> order;
  auto kernel = [](Domain&, Fifo<Msg>& fifo, std::vector<int>& out) -> Kernel {
    Msg m;
    out.push_back(fifo.poll(m) ? 1 : 0);  // empty: must not block
    co_await fifo.push({7, true});
    // Thread fifo: pushed items are immediately pollable.
    out.push_back(fifo.poll(m) ? m.value : -1);
  };
  sys.spawn("k", kernel(sys.domain(), q, order));
  sys.run();
  EXPECT_EQ(order, (std::vector<int>{0, 7}));
}

TEST(FifoStats, CountsStallsInCycleMode) {
  System sys(Mode::kCycle);
  auto& q = sys.make_fifo<Msg>("q", 2);
  auto slow_producer = [](Domain& d, Fifo<Msg>& out) -> Kernel {
    for (int i = 0; i < 4; ++i) {
      for (int wait = 0; wait < 5; ++wait) co_await clk(d);
      co_await out.push({i, i == 3});
    }
  };
  auto consumer = [](Domain& d, Fifo<Msg>& in) -> Kernel {
    for (;;) {
      Msg m = co_await in.pop();
      co_await clk(d);
      if (m.last) break;
    }
  };
  sys.spawn("producer", slow_producer(sys.domain(), q));
  sys.spawn("consumer", consumer(sys.domain(), q));
  sys.run();
  EXPECT_GT(q.stats().pop_stalls, 0u);  // consumer starved
  EXPECT_EQ(q.stats().pushes, 4u);
  EXPECT_EQ(q.stats().pops, 4u);
}

TEST(System, RejectsMisuse) {
  {
    System sys(Mode::kCycle);
    EXPECT_THROW(sys.run(), Error);  // no kernels
  }
  {
    System sys(Mode::kCycle);
    auto spin = [](Domain& d) -> Kernel { co_await clk(d); };
    sys.spawn("a", spin(sys.domain()));
    sys.run();
    EXPECT_THROW(sys.run(), Error);  // run twice
  }
}

TEST(CycleDeterminism, IdenticalRunsProduceIdenticalCycleCounts) {
  auto run_once = [] {
    System sys(Mode::kCycle);
    auto& a = sys.make_fifo<Msg>("a", 3);
    auto& b = sys.make_fifo<Msg>("b", 3);
    auto producer = [](Domain& d, Fifo<Msg>& out) -> Kernel {
      for (int i = 0; i < 200; ++i) {
        co_await out.push({i, i == 199});
        co_await clk(d);
      }
    };
    auto relay = [](Domain& d, Fifo<Msg>& in, Fifo<Msg>& out) -> Kernel {
      for (;;) {
        Msg m = co_await in.pop();
        co_await out.push(m);
        co_await clk(d);
        if (m.last) break;
      }
    };
    auto sink = [](Domain& d, Fifo<Msg>& in) -> Kernel {
      for (;;) {
        Msg m = co_await in.pop();
        co_await clk(d);
        if (m.last) break;
      }
    };
    sys.spawn("p", producer(sys.domain(), a));
    sys.spawn("r", relay(sys.domain(), a, b));
    sys.spawn("s", sink(sys.domain(), b));
    return sys.run().cycles;
  };
  const std::uint64_t first = run_once();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_once(), first);
}

TEST(Barrier, ReusableAcrossManyGenerations) {
  for (const Mode mode : {Mode::kThread, Mode::kCycle}) {
    System sys(mode);
    auto& bar = sys.make_barrier("bar", 3);
    std::array<std::atomic<int>, 3> rounds{};
    auto participant = [](Domain& d, Barrier& b, std::atomic<int>& mine,
                          std::array<std::atomic<int>, 3>& all) -> Kernel {
      for (int round = 0; round < 50; ++round) {
        mine.store(round);
        co_await b.arrive_and_wait();
        // All participants are at the same round between barriers.
        for (const auto& r : all)
          TSCA_CHECK(r.load() == round, "skew " << r.load() << " vs " << round);
        co_await b.arrive_and_wait();
        co_await clk(d);
      }
    };
    for (int i = 0; i < 3; ++i)
      sys.spawn("p" + std::to_string(i),
                participant(sys.domain(), bar, rounds[static_cast<std::size_t>(i)],
                            rounds));
    EXPECT_NO_THROW(sys.run());
  }
}

}  // namespace
}  // namespace tsca::hls
