// Batched convolution: weight-amortized multi-image execution.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  return bank;
}

class BatchedConv : public ::testing::TestWithParam<int> {};

TEST_P(BatchedConv, EveryImageMatchesReference) {
  const int bank_words = GetParam();  // small values force stripes + chunks
  Rng rng(71);
  constexpr int kBatch = 3;
  std::vector<nn::FeatureMapI8> images;
  std::vector<pack::TiledFm> tiled;
  for (int i = 0; i < kBatch; ++i) {
    images.push_back(random_fm({8, 14, 14}, rng));
    tiled.push_back(pack::to_tiled(images.back()));
  }
  const nn::FilterBankI8 filters = random_filters({16, 8, 3, 3}, 0.5, rng);
  const std::vector<std::int32_t> bias(16, -4);
  const nn::Requant rq{.shift = 6, .relu = true};

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = bank_words;
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun run;
  const std::vector<pack::TiledFm> outputs = runtime.run_conv_batch(
      tiled, pack::pack_filters(filters), bias, rq, run);

  ASSERT_EQ(outputs.size(), images.size());
  for (int i = 0; i < kBatch; ++i)
    EXPECT_EQ(pack::from_tiled(outputs[static_cast<std::size_t>(i)]),
              nn::conv2d_i8(images[static_cast<std::size_t>(i)], filters,
                            bias, 1, rq))
        << "image " << i;
}

INSTANTIATE_TEST_SUITE_P(BankSizes, BatchedConv,
                         ::testing::Values(4096,  // one stripe, one chunk
                                           400,   // stripes + chunks
                                           240),  // heavier splitting
                         [](const auto& info) {
                           return "bank" + std::to_string(info.param);
                         });

TEST(BatchedConv, AmortizesWeightDmaAcrossImages) {
  Rng rng(72);
  constexpr int kBatch = 4;
  std::vector<pack::TiledFm> tiled;
  for (int i = 0; i < kBatch; ++i)
    tiled.push_back(pack::to_tiled(random_fm({8, 16, 16}, rng)));
  const nn::FilterBankI8 filters = random_filters({16, 8, 3, 3}, 0.8, rng);
  const pack::PackedFilters packed = pack::pack_filters(filters);
  const std::vector<std::int32_t> bias(16, 0);
  const nn::Requant rq{.shift = 6, .relu = true};

  auto dma_in_bytes = [&](bool batched) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.bank_words = 4096;
    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
    if (batched) {
      driver::LayerRun run;
      runtime.run_conv_batch(tiled, packed, bias, rq, run);
    } else {
      for (const pack::TiledFm& image : tiled) {
        driver::LayerRun run;
        runtime.run_conv(image, packed, bias, rq, run);
      }
    }
    return dma.stats().bytes_to_fpga;
  };
  const std::uint64_t batched = dma_in_bytes(true);
  const std::uint64_t separate = dma_in_bytes(false);
  // Weights moved once instead of kBatch times.
  const std::uint64_t weight_bytes = [&] {
    const driver::WeightImage wimg(packed, 4, 4);
    std::uint64_t total = 0;
    for (int g = 0; g < wimg.groups(); ++g)
      for (int lane = 0; lane < 4; ++lane)
        total += wimg.bytes(g, lane).size();
    return total;
  }();
  EXPECT_EQ(separate - batched, (kBatch - 1) * weight_bytes);
}

}  // namespace
}  // namespace tsca
