// Platform simulation: SRAM banks + ports, DDR, DMA, MMIO registers.
#include <gtest/gtest.h>

#include "hls/system.hpp"
#include "sim/dma.hpp"
#include "sim/mmio.hpp"
#include "sim/sram.hpp"
#include "util/rng.hpp"

namespace tsca::sim {
namespace {

TEST(WordTileCodec, RoundTripsAllValues) {
  pack::Tile tile;
  for (int i = 0; i < pack::kTileSize; ++i)
    tile.v[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(i * 17 - 120);
  EXPECT_EQ(tile_from_word(word_from_tile(tile)), tile);
}

TEST(WordTileCodec, UsesSignMagnitudeOctets) {
  pack::Tile tile{};
  tile.v[0] = -5;
  tile.v[1] = 5;
  const Word word = word_from_tile(tile);
  EXPECT_EQ(word.b[0], 0x85);
  EXPECT_EQ(word.b[1], 0x05);
}

TEST(SramBank, ReadWriteAndBounds) {
  SramBank bank("b", 16);
  pack::Tile tile;
  tile.v.fill(7);
  bank.write_tile(3, tile);
  EXPECT_EQ(bank.read_tile(3), tile);
  EXPECT_THROW(bank.read_word(16), MemoryError);
  EXPECT_THROW(bank.write_word(-1, Word{}), MemoryError);
}

TEST(SramBank, BulkLoadStoreWithPartialTailWord) {
  SramBank bank("b", 4);
  std::vector<std::uint8_t> data(40);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i + 1);
  bank.load(0, data.data(), data.size());
  std::vector<std::uint8_t> back(48, 0xEE);
  bank.store(0, back.data(), 48);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(back[i], data[i]);
  for (std::size_t i = 40; i < 48; ++i) EXPECT_EQ(back[i], 0);  // zero pad
  EXPECT_THROW(bank.load(3, data.data(), 40), MemoryError);
}

TEST(SramBank, FillSetsWords) {
  SramBank bank("b", 8);
  bank.fill(2, 3, 0xAB);
  EXPECT_EQ(bank.read_word(2).b[0], 0xAB);
  EXPECT_EQ(bank.read_word(4).b[15], 0xAB);
  EXPECT_EQ(bank.read_word(1).b[0], 0);
  EXPECT_THROW(bank.fill(6, 3, 1), MemoryError);
}

TEST(SramPort, CycleModeGrantsOncePerCycle) {
  // Two kernels contending for one read port serialize to 1 access/cycle.
  hls::System sys(hls::Mode::kCycle);
  SramBank bank("b", 8);
  bank.bind(sys.scheduler());
  constexpr int kAccesses = 50;
  auto reader = [](hls::Domain& d, SramPort& port, int n) -> hls::Kernel {
    for (int i = 0; i < n; ++i) {
      co_await port.grant();
      co_await hls::clk(d);
    }
  };
  sys.spawn("r0", reader(sys.domain(), bank.read_port(), kAccesses));
  sys.spawn("r1", reader(sys.domain(), bank.read_port(), kAccesses));
  const auto result = sys.run();
  EXPECT_EQ(bank.read_port().grants(), 2u * kAccesses);
  EXPECT_GE(result.cycles, 2u * kAccesses);          // serialized
  EXPECT_LE(result.cycles, 2u * kAccesses + 10);
}

TEST(SramPort, ThreadModeGrantsAreFree) {
  SramBank bank("b", 8);
  bank.bind(nullptr);  // functional mode
  auto awaiter = bank.read_port().grant();
  EXPECT_TRUE(awaiter.await_ready());
  EXPECT_EQ(bank.read_port().stall_cycles(), 0u);
}

TEST(Dram, ReadWriteAndBounds) {
  Dram dram(128);
  const std::uint8_t data[4] = {1, 2, 3, 4};
  dram.write(100, data, 4);
  std::uint8_t back[4] = {};
  dram.read(100, back, 4);
  EXPECT_EQ(back[2], 3);
  EXPECT_THROW(dram.write(126, data, 4), MemoryError);
  EXPECT_THROW(dram.read(300, back, 1), MemoryError);
}

TEST(DmaEngine, TransfersAndAccounts) {
  Dram dram(1 << 16);
  DmaEngine dma(dram, /*setup_cycles=*/8);
  SramBank bank("b", 64);

  std::vector<std::uint8_t> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 7);
  dram.write(512, payload.data(), payload.size());
  dma.to_bank(bank, 4, 512, payload.size());
  EXPECT_EQ(bank.read_word(4).b[0], payload[0]);
  EXPECT_EQ(bank.read_word(10).b[3], payload[99]);

  dma.to_dram(bank, 4, 2048, payload.size());
  std::vector<std::uint8_t> back(payload.size());
  dram.read(2048, back.data(), back.size());
  EXPECT_EQ(back, payload);

  const DmaStats& stats = dma.stats();
  EXPECT_EQ(stats.transfers, 2u);
  EXPECT_EQ(stats.bytes_to_fpga, 100u);
  EXPECT_EQ(stats.bytes_to_dram, 100u);
  // cycles: 2 × (setup 8 + latency 30 + ceil(100/32)=4 beats) = 84.
  EXPECT_EQ(stats.modelled_cycles, 2u * (8 + 30 + 4));
}

TEST(DmaEngine, ZeroByteTransferIsNoOp) {
  Dram dram(64);
  DmaEngine dma(dram);
  SramBank bank("b", 4);
  dma.to_bank(bank, 0, 0, 0);
  EXPECT_EQ(dma.stats().transfers, 0u);
}

TEST(RegisterFile, ReadWritePeekPokeAndBounds) {
  RegisterFile regs("ctrl", 8);
  regs.write(3, 0xDEADBEEF);
  EXPECT_EQ(regs.read(3), 0xDEADBEEFu);
  EXPECT_EQ(regs.bus_writes(), 1u);
  EXPECT_EQ(regs.bus_reads(), 1u);
  regs.poke(4, 5);
  EXPECT_EQ(regs.peek(4), 5u);
  EXPECT_EQ(regs.bus_reads(), 1u);  // peek/poke bypass bus accounting
  EXPECT_THROW(regs.read(8), MemoryError);
  EXPECT_THROW(regs.write(-1, 0), MemoryError);
}

}  // namespace
}  // namespace tsca::sim
