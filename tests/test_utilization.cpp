// Per-kernel utilization accounting and the FC-as-conv ablation.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

TEST(Utilization, ConvKernelsBusyPoolPadIdleDuringConvolution) {
  Rng rng(61);
  nn::FeatureMapI8 input({8, 16, 16});
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-30, 30));
  nn::FilterBankI8 filters({8, 8, 3, 3});
  for (std::size_t i = 0; i < filters.size(); ++i)
    filters.data()[i] = static_cast<std::int8_t>(rng.next_int(-9, 9));

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 4096;
  core::Accelerator acc(cfg);
  const driver::WeightImage wimg(pack::pack_filters(filters), cfg.lanes,
                                 cfg.group);
  const driver::ConvPlan plan =
      driver::plan_conv(cfg, input.shape(), 8, 3, wimg);
  const pack::TiledFm tiled = pack::to_tiled(input);
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    const auto bytes = driver::bank_stripe_bytes(
        tiled, lane, cfg.lanes, 0, plan.stripes[0].in_tile_rows);
    acc.bank(lane).load(plan.ifm_base, bytes.data(), bytes.size());
    int base = plan.weight_base;
    for (int g = 0; g < wimg.groups(); ++g) {
      acc.bank(lane).load(base, wimg.bytes(g, lane).data(),
                          wimg.bytes(g, lane).size());
      base += wimg.aligned_words(g);
    }
  }
  std::vector<core::Instruction> instrs;
  int base = plan.weight_base;
  for (int g = 0; g < wimg.groups(); ++g) {
    instrs.push_back(core::Instruction::make_conv(driver::make_conv_instr(
        plan, plan.stripes[0], g, base, wimg, {}, nn::Requant{.shift = 6},
        cfg.group)));
    base += wimg.aligned_words(g);
  }
  hls::SystemOptions options = core::Accelerator::default_options();
  options.track_utilization = true;
  const core::BatchStats stats =
      acc.run_batch(instrs, hls::Mode::kCycle, options);

  ASSERT_FALSE(stats.kernel_activity.empty());
  std::map<std::string, double> util;
  for (const auto& activity : stats.kernel_activity)
    util[activity.name] =
        static_cast<double>(activity.resumes) /
        static_cast<double>(stats.cycles);
  // The dense conv keeps inject/conv/accum lanes nearly fully busy.
  EXPECT_GT(util["conv0"], 0.7);
  EXPECT_GT(util["inject0"], 0.7);
  EXPECT_GT(util["accum0"], 0.7);
  // Pool/pad units wake only for their halt token.
  EXPECT_LT(util["poolpad0"], 0.01);
  // Controller dispatches a handful of messages.
  EXPECT_LT(util["controller"], 0.2);
}

TEST(FcAsConv, MatchesHostFcButWastesTheDatapath) {
  Rng rng(62);
  const int in_dim = 64;
  const int out_dim = 16;
  std::vector<std::int8_t> input(in_dim);
  for (auto& v : input) v = static_cast<std::int8_t>(rng.next_int(-40, 40));
  std::vector<std::int8_t> weights(
      static_cast<std::size_t>(in_dim) * out_dim);
  for (auto& w : weights) w = static_cast<std::int8_t>(rng.next_int(-10, 10));
  std::vector<std::int32_t> bias(out_dim, 12);
  const nn::Requant rq{.shift = 7, .relu = false};

  const std::vector<std::int8_t> expected =
      nn::fc_i8(input, weights, bias, out_dim, rq);

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 4096;
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun run;
  const std::vector<std::int8_t> logits =
      runtime.run_fc_as_conv(input, weights, bias, out_dim, rq, run);
  EXPECT_EQ(logits, expected);

  // The ablation's point: utilization is pitiful.  Useful MACs = in*out; the
  // datapath could have done 256/cycle.
  const double useful =
      static_cast<double>(in_dim) * out_dim /
      (static_cast<double>(run.cycles) * cfg.macs_per_cycle());
  EXPECT_LT(useful, 1.0 / 16.0);  // the 1-of-16 tile-value bound
  EXPECT_GT(useful, 0.005);
}

}  // namespace
}  // namespace tsca
