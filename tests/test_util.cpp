// Utilities: deterministic RNG, check macro, logging levels.
#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextIntCoversInclusiveRangeUniformly) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every value hit
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, GaussianHasZeroMeanUnitVariance) {
  Rng rng(9);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(10);
  EXPECT_THROW(rng.next_below(0), Error);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Check, ThrowsWithStreamedMessage) {
  const int x = 41;
  try {
    TSCA_CHECK(x == 42, "x=" << x << " expected 42");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x == 42"), std::string::npos);
    EXPECT_NE(what.find("x=41"), std::string::npos);
    EXPECT_NE(what.find("expected 42"), std::string::npos);
  }
  EXPECT_NO_THROW(TSCA_CHECK(x == 41));
}

TEST(Check, ErrorHierarchy) {
  EXPECT_THROW(throw ConfigError("c"), Error);
  EXPECT_THROW(throw InstructionError("i"), Error);
  EXPECT_THROW(throw MemoryError("m"), Error);
  EXPECT_THROW(throw DeadlockError("d"), Error);
}

TEST(Log, LevelGatesEmission) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below threshold: the macro must not evaluate its arguments.
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  TSCA_INFO("msg " << count());
  EXPECT_EQ(evaluations, 0);
  set_log_level(before);
}

}  // namespace
}  // namespace tsca
