// The network zoo through the equivalence harness.
//
// Each zoo family exercises a lowering the VGG chain never touches:
// residual skips (tensor slots + kEltwiseAdd), depthwise + pointwise convs,
// global pooling, and ternary weight streams.  Every family must be
// bit-exact — cycle == thread == fast == the int8 reference, layer by
// layer — with the fast path's predicted work counters pinned to the cycle
// engine's measurements, on every compiled-in SIMD backend, serial and
// batch-major alike.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/simd.hpp"
#include "driver/program.hpp"
#include "driver/runtime.hpp"
#include "nn/network.hpp"
#include "nn/zoo.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

struct ZooCase {
  const char* name;
  zoo::ZooModel (*make)(std::uint64_t seed);
  std::uint64_t seed;
};

const ZooCase kZooCases[] = {
    {"residual_cifar", zoo::make_residual_cifar, 7},
    {"mobile_dw", zoo::make_mobile_depthwise, 11},
    {"ternary_mlp", zoo::make_ternary_mlp, 13},
};

nn::FeatureMapI8 make_input(const nn::FmShape& shape, std::uint64_t seed) {
  Rng rng(seed);
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-64, 64));
  return fm;
}

core::ArchConfig zoo_config() {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 2048;  // small banks: stripes even on 16x16 maps
  return cfg;
}

driver::NetworkRun run_zoo(const zoo::ZooModel& m,
                           const nn::FeatureMapI8& input,
                           driver::ExecMode mode) {
  core::Accelerator acc(zoo_config());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma,
                          {.mode = mode, .keep_activations = true});
  return runtime.run_network(m.net, m.model, input);
}

class ZooEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ZooEquivalence, EnginesAgreeWithReferenceLayerByLayer) {
  const ZooCase& zc = kZooCases[GetParam()];
  SCOPED_TRACE(zc.name);
  const zoo::ZooModel m = zc.make(zc.seed);
  const nn::FeatureMapI8 input = make_input(m.net.input_shape(), 0x500 + zc.seed);

  const std::vector<nn::ActivationI8> ref =
      nn::forward_i8_all(m.net, m.model.weights, input);

  const driver::NetworkRun cycle = run_zoo(m, input, driver::ExecMode::kCycle);
  const driver::NetworkRun thread = run_zoo(m, input, driver::ExecMode::kThread);
  const driver::NetworkRun fast = run_zoo(m, input, driver::ExecMode::kFast);

  ASSERT_EQ(cycle.activations.size(), thread.activations.size());
  ASSERT_EQ(cycle.activations.size(), fast.activations.size());
  for (std::size_t i = 0; i < cycle.activations.size(); ++i) {
    EXPECT_EQ(cycle.activations[i], thread.activations[i])
        << "thread engine divergence after layer " << i;
    EXPECT_EQ(cycle.activations[i], fast.activations[i])
        << "fast path divergence after layer " << i;
    EXPECT_EQ(cycle.activations[i], ref[i].fm)
        << "reference mismatch after layer " << m.net.layers()[i].name;
  }
  EXPECT_EQ(cycle.logits, ref.back().flat);
  EXPECT_EQ(fast.logits, cycle.logits);
  EXPECT_EQ(thread.logits, cycle.logits);

  // Exact work counters: the fast path predicts the very schedule the cycle
  // engine executed — including depthwise banks (off-diagonal taps are
  // zero-skipped, not free) and global pools (ordinary kPadPool machinery).
  ASSERT_EQ(cycle.layers.size(), fast.layers.size());
  for (std::size_t i = 0; i < cycle.layers.size(); ++i) {
    const driver::LayerRun& c = cycle.layers[i];
    const driver::LayerRun& f = fast.layers[i];
    EXPECT_EQ(c.on_accelerator, f.on_accelerator) << c.name;
    if (!c.on_accelerator) continue;
    EXPECT_EQ(f.macs, c.macs) << c.name;
    EXPECT_EQ(f.counters.macs_performed, c.counters.macs_performed) << c.name;
    EXPECT_EQ(f.counters.weight_cmds, c.counters.weight_cmds) << c.name;
    EXPECT_EQ(f.counters.weight_bubbles, c.counters.weight_bubbles) << c.name;
    EXPECT_EQ(f.counters.pool_ops, c.counters.pool_ops) << c.name;
    EXPECT_EQ(f.counters.positions, c.counters.positions) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ZooEquivalence, ::testing::Range(0, 3));

// Restores the entry SIMD backend no matter how a backend-switching test
// exits (same pattern as test_engine_equivalence.cpp).
struct BackendGuard {
  std::string entry{core::simd::backend_name()};
  ~BackendGuard() { core::simd::select_backend(entry.c_str()); }
};

TEST(ZooEquivalence, EveryBackendMatchesCycleEngine) {
  BackendGuard guard;
  for (const ZooCase& zc : kZooCases) {
    SCOPED_TRACE(zc.name);
    const zoo::ZooModel m = zc.make(zc.seed);
    const nn::FeatureMapI8 input =
        make_input(m.net.input_shape(), 0x501 + zc.seed);
    const driver::NetworkRun cycle =
        run_zoo(m, input, driver::ExecMode::kCycle);
    for (const core::simd::SimdBackend* be : core::simd::available_backends()) {
      ASSERT_TRUE(core::simd::select_backend(be->name)) << be->name;
      SCOPED_TRACE(std::string("backend ") + be->name);
      const driver::NetworkRun fast = run_zoo(m, input, driver::ExecMode::kFast);
      ASSERT_EQ(cycle.activations.size(), fast.activations.size());
      for (std::size_t i = 0; i < cycle.activations.size(); ++i)
        EXPECT_EQ(cycle.activations[i], fast.activations[i])
            << "divergence after layer " << i;
      EXPECT_EQ(cycle.logits, fast.logits);
    }
  }
}

// Batch-major execution threads the per-image tensor slots through the
// residual steps; per-image results must stay identical to serial runs.
TEST(ZooEquivalence, BatchMatchesSerialPerImage) {
  BackendGuard guard;
  for (const ZooCase& zc : kZooCases) {
    SCOPED_TRACE(zc.name);
    const zoo::ZooModel m = zc.make(zc.seed);
    const driver::NetworkProgram program =
        driver::NetworkProgram::compile(m.net, m.model, zoo_config());

    std::vector<nn::FeatureMapI8> inputs;
    for (int i = 0; i < 5; ++i)
      inputs.push_back(
          make_input(m.net.input_shape(), 0x777 + zc.seed * 31 + i));

    for (const core::simd::SimdBackend* be : core::simd::available_backends()) {
      ASSERT_TRUE(core::simd::select_backend(be->name)) << be->name;
      SCOPED_TRACE(std::string("backend ") + be->name);
      core::Accelerator acc(zoo_config());
      sim::Dram dram(32u << 20);
      sim::DmaEngine dma(dram);
      driver::Runtime runtime(acc, dram, dma,
                              {.mode = driver::ExecMode::kFast});
      std::vector<driver::NetworkRun> serial;
      for (const nn::FeatureMapI8& input : inputs)
        serial.push_back(runtime.run_network(program, input));
      const driver::BatchNetworkRun batched =
          runtime.run_network_batch(program, inputs);
      ASSERT_EQ(batched.requests.size(), serial.size());
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(batched.requests[i].flat_output, serial[i].flat_output)
            << "image " << i;
        EXPECT_EQ(batched.requests[i].logits, serial[i].logits)
            << "image " << i;
        EXPECT_EQ(batched.requests[i].final_fm, serial[i].final_fm)
            << "image " << i;
      }
    }
  }
}

// The batch cycle engine must agree with the batch fast path on zoo nets
// too (slots per image under both engines).
TEST(ZooEquivalence, BatchCycleAgreesWithBatchFast) {
  const zoo::ZooModel m = zoo::make_residual_cifar();
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(m.net, m.model, zoo_config());
  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < 3; ++i)
    inputs.push_back(make_input(m.net.input_shape(), 0x900 + i));

  driver::BatchNetworkRun runs[2];
  const driver::ExecMode modes[2] = {driver::ExecMode::kCycle,
                                     driver::ExecMode::kFast};
  for (int k = 0; k < 2; ++k) {
    core::Accelerator acc(zoo_config());
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = modes[k]});
    runs[k] = runtime.run_network_batch(program, inputs);
  }
  ASSERT_EQ(runs[0].requests.size(), runs[1].requests.size());
  for (std::size_t i = 0; i < runs[0].requests.size(); ++i)
    EXPECT_EQ(runs[0].requests[i].logits, runs[1].requests[i].logits)
        << "image " << i;
}

// Zoo builders are deterministic in the seed: the same seed reproduces the
// same quantized weights (the registry's dedup tests depend on this).
TEST(ZooEquivalence, BuildersAreDeterministic) {
  const zoo::ZooModel a = zoo::make_mobile_depthwise(42);
  const zoo::ZooModel b = zoo::make_mobile_depthwise(42);
  ASSERT_EQ(a.model.weights.conv.size(), b.model.weights.conv.size());
  for (std::size_t i = 0; i < a.model.weights.conv.size(); ++i)
    EXPECT_EQ(a.model.weights.conv[i], b.model.weights.conv[i]) << i;
  const zoo::ZooModel c = zoo::make_mobile_depthwise(43);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.model.weights.conv.size(); ++i)
    if (!(a.model.weights.conv[i] == c.model.weights.conv[i]))
      any_differs = true;
  EXPECT_TRUE(any_differs) << "different seeds produced identical weights";
}

}  // namespace
}  // namespace tsca
