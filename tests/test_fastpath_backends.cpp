// Kernel-level SIMD backend property sweep + stripe-parallel fast-path
// determinism.
//
// Every SimdBackend operation must be bit-exact against the scalar backend on
// arbitrary inputs — overflow, rounding boundaries, zero-skip decisions and
// all.  The sweeps here hammer each vtable entry directly with randomized and
// adversarial operands (test_engine_equivalence.cpp covers the same backends
// end-to-end through whole networks); the stripe tests then pin the
// PoolRuntime's fast path — stripe row-bands fanned out across workers, plus
// the batch-major image fan-out — to the serial fast path bit-for-bit,
// statistics included.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/simd.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/runtime.hpp"
#include "nn/layers.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

using core::simd::SimdBackend;

const SimdBackend* backend_named(const char* name) {
  for (const SimdBackend* be : core::simd::available_backends())
    if (std::string(be->name) == name) return be;
  return nullptr;
}

// Backends other than scalar — each test compares these against scalar.
std::vector<const SimdBackend*> wide_backends() {
  std::vector<const SimdBackend*> out;
  for (const SimdBackend* be : core::simd::available_backends())
    if (std::string(be->name) != "scalar") out.push_back(be);
  return out;
}

std::vector<std::int8_t> random_i8(std::size_t n, Rng& rng,
                                   double zero_p = 0.25) {
  std::vector<std::int8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = rng.next_double() < zero_p
               ? std::int8_t{0}
               : static_cast<std::int8_t>(rng.next_int(-128, 127));
  return v;
}

std::vector<std::int32_t> random_i32(std::size_t n, Rng& rng) {
  std::vector<std::int32_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(rng.next_int(-(1 << 30), (1 << 30))) * 3u);
  return v;
}

TEST(SimdBackends, ScalarAndSse2AlwaysPresent) {
  ASSERT_NE(backend_named("scalar"), nullptr);
#if defined(__x86_64__)
  ASSERT_NE(backend_named("sse2"), nullptr);
#endif
  // Widest last: the entry-point choice is the back of the list.
  const auto all = core::simd::available_backends();
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(all[i]->width, all[i - 1]->width);
}

TEST(SimdBackends, MacMatchesScalar) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(0x11A0);
  for (const int n : {1, 2, 3, 7, 16}) {
    const std::vector<std::int8_t> x = random_i8(16u * n, rng);
    const std::vector<std::int32_t> base = random_i32(16u * n, rng);
    for (const std::int8_t w : {std::int8_t{-128}, std::int8_t{-3},
                                std::int8_t{0}, std::int8_t{7},
                                std::int8_t{127}}) {
      std::vector<std::int32_t> want = base;
      scalar->mac(want.data(), x.data(), w, n);
      for (const SimdBackend* be : wide_backends()) {
        std::vector<std::int32_t> got = base;
        be->mac(got.data(), x.data(), w, n);
        EXPECT_EQ(got, want) << be->name << " n=" << n << " w=" << int{w};
      }
    }
  }
}

TEST(SimdBackends, DotMatchesScalarIncludingOverflow) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(0xD07);
  for (const int n : {1, 2, 5, 33, 64}) {
    std::vector<std::int8_t> a = random_i8(16u * n, rng);
    std::vector<std::int8_t> b = random_i8(16u * n, rng);
    // Saturate a stretch with the extreme product so the int32 accumulator
    // wraps: wrapping addition is order-independent, so every backend must
    // still return the identical value.
    for (std::size_t i = 0; i < a.size() / 2; ++i) {
      a[i] = -128;
      b[i] = 127;
    }
    const std::int32_t want = scalar->dot(a.data(), b.data(), n);
    for (const SimdBackend* be : wide_backends())
      EXPECT_EQ(be->dot(a.data(), b.data(), n), want)
          << be->name << " n=" << n;
  }
}

TEST(SimdBackends, Dot4EqualsFourDots) {
  Rng rng(0xD074);
  for (const int n : {1, 3, 8, 33}) {
    const std::vector<std::int8_t> a = random_i8(16u * n, rng);
    std::vector<std::vector<std::int8_t>> streams;
    for (int k = 0; k < 4; ++k) streams.push_back(random_i8(16u * n, rng));
    const std::int8_t* b[4] = {streams[0].data(), streams[1].data(),
                               streams[2].data(), streams[3].data()};
    for (const SimdBackend* be : core::simd::available_backends()) {
      std::int32_t out[4] = {};
      be->dot4(a.data(), b, n, out);
      for (int k = 0; k < 4; ++k)
        EXPECT_EQ(out[k], be->dot(a.data(), b[k], n))
            << be->name << " n=" << n << " stream " << k;
    }
  }
}

TEST(SimdBackends, RequantizeMatchesScalar) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(0x4E9);
  for (const int shift : {0, 1, 6, 15, 30, 31}) {
    for (const bool relu : {false, true}) {
      const int n = 5;
      std::vector<std::int32_t> acc = random_i32(16u * n, rng);
      // Rounding boundaries: exactly half, half minus one, and the clamp
      // edges (round half away from zero, clamp to [-127, 127]).
      if (shift > 0) {
        acc[0] = 1 << (shift - 1);
        acc[1] = (1 << (shift - 1)) - 1;
        acc[2] = -(1 << (shift - 1));
        acc[3] = -(1 << (shift - 1)) + 1;
      }
      acc[4] = INT32_MAX;
      acc[5] = INT32_MIN;
      acc[6] = 0;
      std::vector<std::int8_t> want(acc.size());
      scalar->requantize(acc.data(), want.data(), shift, relu, n);
      for (const SimdBackend* be : wide_backends()) {
        std::vector<std::int8_t> got(acc.size());
        be->requantize(acc.data(), got.data(), shift, relu, n);
        EXPECT_EQ(got, want)
            << be->name << " shift=" << shift << " relu=" << relu;
      }
    }
  }
}

TEST(SimdBackends, MaskedMax16MatchesScalar) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(0x3A5);
  for (int rep = 0; rep < 32; ++rep) {
    const std::vector<std::int8_t> v = random_i8(16, rng, 0.1);
    std::uint8_t mask[16];
    for (int i = 0; i < 16; ++i)
      mask[i] = rng.next_bool() ? std::uint8_t{0xff} : std::uint8_t{0};
    if (rep == 0) std::memset(mask, 0, sizeof mask);  // fully masked: -127
    if (rep == 1) std::memset(mask, 0xff, sizeof mask);
    const std::int8_t want = scalar->masked_max16(v.data(), mask);
    if (rep == 0) EXPECT_EQ(want, nn::kInt8Min);
    for (const SimdBackend* be : wide_backends())
      EXPECT_EQ(be->masked_max16(v.data(), mask), want)
          << be->name << " rep=" << rep;
  }
}

TEST(SimdBackends, PoolStepMatchesScalar) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(0x9001);
  for (int rep = 0; rep < 48; ++rep) {
    core::simd::PoolStepCtl ctl{};
    for (int m = 0; m < 4; ++m)
      for (int i = 0; i < 16; ++i)
        ctl.max_mask[m][i] = rng.next_bool() ? std::uint8_t{0xff}
                                             : std::uint8_t{0};
    for (int i = 0; i < 16; ++i) {
      const int unit = rng.next_int(0, 3);
      const int mode = rng.next_int(0, 2);  // take / combine / keep
      ctl.unit4[i] = mode == 2 ? std::uint8_t{0}
                               : static_cast<std::uint8_t>(4 * unit);
      ctl.take[i] = mode == 0 ? std::uint8_t{0xff} : std::uint8_t{0};
      ctl.comb[i] = mode == 1 ? std::uint8_t{0xff} : std::uint8_t{0};
    }
    const std::vector<std::int8_t> tile = random_i8(16, rng, 0.2);
    const std::vector<std::int8_t> init = random_i8(16, rng, 0.2);

    std::vector<std::int8_t> want = init;
    scalar->pool_step(tile.data(), ctl, want.data());
    for (const SimdBackend* be : wide_backends()) {
      std::vector<std::int8_t> got = init;
      be->pool_step(tile.data(), ctl, got.data());
      EXPECT_EQ(got, want) << be->name << " rep=" << rep;
    }
  }
}

TEST(SimdBackends, IsZeroMatchesScalar) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  for (const int n : {1, 2, 4, 9}) {
    std::vector<std::int8_t> x(16u * n, 0);
    for (const SimdBackend* be : core::simd::available_backends())
      EXPECT_TRUE(be->is_zero(x.data(), n)) << be->name << " n=" << n;
    // A single nonzero byte anywhere must flip the probe on every backend.
    for (const std::size_t pos :
         {std::size_t{0}, x.size() / 2, x.size() - 1}) {
      x[pos] = -1;
      const bool want = scalar->is_zero(x.data(), n);
      EXPECT_FALSE(want);
      for (const SimdBackend* be : wide_backends())
        EXPECT_EQ(be->is_zero(x.data(), n), want)
            << be->name << " n=" << n << " pos=" << pos;
      x[pos] = 0;
    }
  }
}

TEST(SimdBackends, ConvRunMatchesScalar) {
  const SimdBackend* scalar = backend_named("scalar");
  ASSERT_NE(scalar, nullptr);
  Rng rng(0xC049);
  for (const int n : {1, 2, 7, 16, 19}) {
    // A strided pixel plane per image; every fourth image's region zeroed so
    // the per-image skip decision is part of what the comparison pins.
    const std::ptrdiff_t row_stride = 24;
    const std::ptrdiff_t img_stride = row_stride * 4 + 8;
    std::vector<std::int8_t> plane =
        random_i8(static_cast<std::size_t>(img_stride) * n, rng, 0.3);
    for (int i = 0; i < n; i += 4)
      for (int r = 0; r < 4; ++r)
        std::memset(plane.data() + i * img_stride + r * row_stride, 0, 4);

    const int rows = 6;
    const std::size_t stride = 16u * n + 8;  // slack: strides need not be tight
    std::vector<core::simd::MacRunEntry> entries;
    const int count = rng.next_int(1, 6);
    for (int e = 0; e < count; ++e)
      entries.push_back({static_cast<std::uint16_t>(rng.next_int(0, rows - 1)),
                         static_cast<std::int8_t>(rng.next_int(-15, 15)), 0});

    const std::vector<std::int32_t> base = random_i32(stride * rows, rng);
    std::vector<std::int32_t> want = base;
    const int want_nz =
        scalar->conv_run(want.data(), stride, entries.data(), count,
                         plane.data(), img_stride, row_stride, n);
    for (const SimdBackend* be : wide_backends()) {
      std::vector<std::int32_t> got = base;
      const int got_nz =
          be->conv_run(got.data(), stride, entries.data(), count, plane.data(),
                       img_stride, row_stride, n);
      EXPECT_EQ(got_nz, want_nz) << be->name << " n=" << n;
      EXPECT_EQ(got, want) << be->name << " n=" << n;
    }
  }
}

// --- Stripe-parallel fast path ------------------------------------------
//
// The fast path's ConvPlan stripes fan out across AcceleratorPool workers
// (disjoint output row-bands, stats summed in stripe index order), so pooled
// fast execution must be bit-identical to serial fast execution — outputs,
// predicted cycles/counters, and FastConvStats — for any worker count.

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));
  return bank;
}

void expect_same_fast_run(const driver::LayerRun& serial,
                          const driver::LayerRun& pooled) {
  EXPECT_EQ(serial.cycles, pooled.cycles);
  EXPECT_EQ(serial.stripes, pooled.stripes);
  EXPECT_EQ(serial.macs, pooled.macs);
  EXPECT_EQ(serial.counters, pooled.counters);
  EXPECT_EQ(serial.fast.regions, pooled.fast.regions);
  EXPECT_EQ(serial.fast.regions_zero, pooled.fast.regions_zero);
  EXPECT_EQ(serial.fast.mac_tiles, pooled.fast.mac_tiles);
  EXPECT_EQ(serial.fast.mac_tiles_skipped, pooled.fast.mac_tiles_skipped);
}

class FastStripeWorkers : public ::testing::TestWithParam<int> {};

TEST_P(FastStripeWorkers, FastConvMatchesSerial) {
  Rng rng(0xFA57);
  const pack::TiledFm input = pack::to_tiled(random_fm({16, 28, 28}, rng));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, -4);
  const nn::Requant rq{.shift = 6, .relu = true};

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;  // small banks force stripes

  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime serial(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  driver::LayerRun serial_run;
  const pack::TiledFm serial_out =
      serial.run_conv(input, packed, bias, rq, serial_run);
  ASSERT_GT(serial_run.stripes, 1);

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kFast});
  driver::LayerRun pooled_run;
  const pack::TiledFm pooled_out =
      pooled.run_conv(input, packed, bias, rq, pooled_run);

  EXPECT_EQ(serial_out, pooled_out);
  expect_same_fast_run(serial_run, pooled_run);
}

TEST_P(FastStripeWorkers, FastConvBatchMatchesSerial) {
  Rng rng(0xFA58);
  constexpr int kBatch = 5;
  std::vector<pack::TiledFm> images;
  for (int i = 0; i < kBatch; ++i)
    images.push_back(pack::to_tiled(random_fm({16, 28, 28}, rng)));
  const pack::PackedFilters packed =
      pack::pack_filters(random_filters({16, 16, 3, 3}, 0.5, rng));
  const std::vector<std::int32_t> bias(16, 3);
  const nn::Requant rq{.shift = 6, .relu = true};

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;

  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime serial(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  driver::LayerRun serial_run;
  const std::vector<pack::TiledFm> serial_out =
      serial.run_conv_batch(images, packed, bias, rq, serial_run);

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kFast});
  driver::LayerRun pooled_run;
  const std::vector<pack::TiledFm> pooled_out =
      pooled.run_conv_batch(images, packed, bias, rq, pooled_run);

  ASSERT_EQ(serial_out.size(), pooled_out.size());
  for (int i = 0; i < kBatch; ++i)
    EXPECT_EQ(serial_out[static_cast<std::size_t>(i)],
              pooled_out[static_cast<std::size_t>(i)])
        << "image " << i;
  expect_same_fast_run(serial_run, pooled_run);
}

TEST_P(FastStripeWorkers, FastPoolMatchesSerial) {
  Rng rng(0xFA59);
  const nn::FeatureMapI8 image = random_fm({8, 14, 14}, rng);
  const nn::FmShape out_shape{8, 7, 7};

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 128;

  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime serial(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  driver::LayerRun serial_run;
  const pack::TiledFm serial_out =
      serial.run_pad_pool(pack::to_tiled(image), core::Opcode::kPool,
                          out_shape, 2, 2, 0, 0, serial_run);

  driver::AcceleratorPool pool(cfg, {.workers = GetParam()});
  driver::PoolRuntime pooled(pool, {.mode = driver::ExecMode::kFast});
  driver::LayerRun pooled_run;
  const pack::TiledFm pooled_out =
      pooled.run_pad_pool(pack::to_tiled(image), core::Opcode::kPool,
                          out_shape, 2, 2, 0, 0, pooled_run);

  EXPECT_EQ(serial_out, pooled_out);
  expect_same_fast_run(serial_run, pooled_run);
}

INSTANTIATE_TEST_SUITE_P(Workers, FastStripeWorkers,
                         ::testing::Values(1, 2, 8), [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace tsca
