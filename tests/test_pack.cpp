// Tiling and zero-skip packing: layout round-trips, packer invariants,
// stream (de)serialization and corrupt-stream rejection.
#include <gtest/gtest.h>

#include "pack/filter_group.hpp"
#include "pack/lane_stream.hpp"
#include "pack/tile.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

namespace tsca::pack {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-127, 127));
  return fm;
}

nn::FilterBankI8 random_bank(nn::FilterShape shape, double density, Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(
          rng.next_bool() ? rng.next_int(1, 127) : rng.next_int(-127, -1));
  return bank;
}

TEST(TilesFor, CeilingDivision) {
  EXPECT_EQ(tiles_for(0), 0);
  EXPECT_EQ(tiles_for(1), 1);
  EXPECT_EQ(tiles_for(4), 1);
  EXPECT_EQ(tiles_for(5), 2);
  EXPECT_EQ(tiles_for(224), 56);
  EXPECT_EQ(tiles_for(14), 4);  // the partial-tile case of deep VGG layers
}

class TiledRoundTrip : public ::testing::TestWithParam<nn::FmShape> {};

TEST_P(TiledRoundTrip, ToTiledFromTiledIsIdentity) {
  Rng rng(11 + static_cast<std::uint64_t>(GetParam().count()));
  const nn::FeatureMapI8 fm = random_fm(GetParam(), rng);
  const TiledFm tiled = to_tiled(fm);
  EXPECT_EQ(tiled.tiles_y(), tiles_for(GetParam().h));
  EXPECT_EQ(tiled.tiles_x(), tiles_for(GetParam().w));
  EXPECT_EQ(from_tiled(tiled), fm);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledRoundTrip,
    ::testing::Values(nn::FmShape{1, 4, 4}, nn::FmShape{3, 5, 7},
                      nn::FmShape{8, 16, 16}, nn::FmShape{2, 1, 1},
                      nn::FmShape{5, 13, 9}, nn::FmShape{1, 14, 14}),
    [](const auto& info) {
      return "c" + std::to_string(info.param.c) + "h" +
             std::to_string(info.param.h) + "w" + std::to_string(info.param.w);
    });

TEST(TiledFm, PaddingValuesAreZero) {
  Rng rng(5);
  const nn::FeatureMapI8 fm = random_fm({2, 5, 6}, rng);
  const TiledFm tiled = to_tiled(fm);
  // Rows 5..7 and cols 6..7 are tile padding and must read zero.
  EXPECT_EQ(tiled.tile(0, 1, 0).at(1, 0), 0);
  EXPECT_EQ(tiled.tile(1, 1, 1).at(3, 3), 0);
  EXPECT_EQ(tiled.tile(0, 0, 1).at(0, 2), 0);  // col 6
  EXPECT_EQ(tiled.tile(0, 0, 1).at(0, 1), fm.at(0, 0, 5));
}

TEST(ReadRegion, OutOfRangeReadsZero) {
  Rng rng(6);
  const nn::FeatureMapI8 fm = random_fm({1, 6, 6}, rng);
  const Tile t = read_region(fm, 0, 4, 4);
  EXPECT_EQ(t.at(0, 0), fm.at(0, 4, 4));
  EXPECT_EQ(t.at(0, 1), fm.at(0, 4, 5));
  EXPECT_EQ(t.at(0, 2), 0);  // col 6: out of range
  EXPECT_EQ(t.at(2, 0), 0);  // row 6
  const Tile neg = read_region(fm, 0, -2, -2);
  EXPECT_EQ(neg.at(0, 0), 0);
  EXPECT_EQ(neg.at(2, 2), fm.at(0, 0, 0));
}

struct PackCase {
  nn::FilterShape shape;
  double density;
};

class PackRoundTrip : public ::testing::TestWithParam<PackCase> {};

TEST_P(PackRoundTrip, PackUnpackIsIdentity) {
  Rng rng(21 + static_cast<std::uint64_t>(GetParam().shape.count()));
  const nn::FilterBankI8 bank =
      random_bank(GetParam().shape, GetParam().density, rng);
  const PackedFilters packed = pack_filters(bank);
  EXPECT_EQ(unpack_filters(packed), bank);

  // No zeros packed; offsets strictly increase within each list.
  std::int64_t nnz = 0;
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (bank.data()[i] != 0) ++nnz;
  EXPECT_EQ(packed.total_nonzeros(), nnz);
  const nn::FilterShape& fs = packed.shape();
  for (int oc = 0; oc < fs.oc; ++oc)
    for (int ic = 0; ic < fs.ic; ++ic)
      for (int wty = 0; wty < packed.wtiles_y(); ++wty)
        for (int wtx = 0; wtx < packed.wtiles_x(); ++wtx) {
          int prev = -1;
          for (const PackedEntry& e : packed.list(oc, ic, wty, wtx)) {
            EXPECT_GT(static_cast<int>(e.offset), prev);
            EXPECT_NE(quant::sm8_decode(e.value), 0);
            prev = e.offset;
          }
        }
}

TEST_P(PackRoundTrip, SerializeDeserializeIsIdentity) {
  Rng rng(22 + static_cast<std::uint64_t>(GetParam().shape.count()));
  const nn::FilterBankI8 bank =
      random_bank(GetParam().shape, GetParam().density, rng);
  const PackedFilters packed = pack_filters(bank);
  const std::vector<std::uint8_t> bytes = serialize(packed);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()),
            packed.serialized_bytes());
  const PackedFilters restored = deserialize(bank.shape(), bytes);
  EXPECT_EQ(unpack_filters(restored), bank);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PackRoundTrip,
    ::testing::Values(PackCase{{4, 4, 3, 3}, 1.0}, PackCase{{4, 4, 3, 3}, 0.4},
                      PackCase{{8, 3, 1, 1}, 0.7}, PackCase{{2, 2, 5, 5}, 0.5},
                      PackCase{{3, 2, 7, 7}, 0.3}, PackCase{{4, 4, 3, 3}, 0.0},
                      PackCase{{16, 8, 3, 3}, 0.25}),
    [](const auto& info) {
      const PackCase& c = info.param;
      return "oc" + std::to_string(c.shape.oc) + "ic" +
             std::to_string(c.shape.ic) + "k" + std::to_string(c.shape.kh) +
             "d" + std::to_string(static_cast<int>(c.density * 100));
    });

TEST(Deserialize, RejectsCorruptStreams) {
  Rng rng(30);
  const nn::FilterBankI8 bank = random_bank({2, 2, 3, 3}, 0.6, rng);
  const std::vector<std::uint8_t> good = serialize(pack_filters(bank));

  // Truncated.
  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 1);
  EXPECT_THROW(deserialize(bank.shape(), truncated), Error);

  // Trailing garbage.
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(deserialize(bank.shape(), trailing), Error);

  // Count too large.
  std::vector<std::uint8_t> bad_count = good;
  bad_count[0] = 17;
  EXPECT_THROW(deserialize(bank.shape(), bad_count), Error);
}

// --- lane streams -----------------------------------------------------

TEST(LaneStream, LanesPartitionAllNonZeros) {
  Rng rng(40);
  const nn::FilterBankI8 bank = random_bank({8, 13, 3, 3}, 0.5, rng);
  const PackedFilters packed = pack_filters(bank);
  const int lanes = 4;
  std::int64_t covered = 0;
  for (int g = 0; g < 2; ++g)
    for (int lane = 0; lane < lanes; ++lane) {
      const LaneStream stream =
          build_lane_stream(packed, g * 4, 4, lane, lanes);
      for (const LaneTileGroup& grp : stream.groups)
        covered += grp.total_nnz(4);
    }
  EXPECT_EQ(covered, packed.total_nonzeros());
}

TEST(LaneStream, SerializeParseRoundTrip) {
  Rng rng(41);
  const nn::FilterBankI8 bank = random_bank({4, 8, 3, 3}, 0.4, rng);
  const PackedFilters packed = pack_filters(bank);
  const LaneStream stream = build_lane_stream(packed, 0, 4, 1, 4);
  const std::vector<std::uint8_t> bytes = serialize_lane_stream(stream);
  const LaneStream parsed =
      parse_lane_stream(bytes, stream.channels, stream.wtiles, stream.active);
  ASSERT_EQ(parsed.groups.size(), stream.groups.size());
  for (std::size_t i = 0; i < stream.groups.size(); ++i) {
    EXPECT_EQ(parsed.groups[i].lists, stream.groups[i].lists);
    EXPECT_EQ(parsed.groups[i].byte_begin, stream.groups[i].byte_begin);
    EXPECT_EQ(parsed.groups[i].byte_end, stream.groups[i].byte_end);
  }
  EXPECT_EQ(parsed.total_bytes, stream.total_bytes);
}

TEST(LaneStream, ByteExtentsAreContiguous) {
  Rng rng(42);
  const nn::FilterBankI8 bank = random_bank({4, 6, 3, 3}, 0.8, rng);
  const LaneStream stream =
      build_lane_stream(pack_filters(bank), 0, 4, 0, 2);
  std::int64_t expected_begin = 0;
  for (const LaneTileGroup& grp : stream.groups) {
    EXPECT_EQ(grp.byte_begin, expected_begin);
    EXPECT_GE(grp.byte_end, grp.byte_begin);
    expected_begin = grp.byte_end;
  }
  EXPECT_EQ(expected_begin, stream.total_bytes);
}

// --- filter grouping --------------------------------------------------

TEST(FilterGroup, IdentityIsNaturalOrder) {
  Rng rng(50);
  const PackedFilters packed =
      pack_filters(random_bank({8, 4, 3, 3}, 0.5, rng));
  const std::vector<int> perm = group_filters(packed, GroupPolicy::kIdentity);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}

TEST(FilterGroup, SortedIsPermutationAndNeverWorse) {
  Rng rng(51);
  // Alternating dense/sparse filters: worst case for natural grouping.
  nn::FilterBankI8 bank({16, 8, 3, 3});
  for (int oc = 0; oc < 16; ++oc) {
    const double d = oc % 2 == 0 ? 0.9 : 0.1;
    for (int ic = 0; ic < 8; ++ic)
      for (int k = 0; k < 9; ++k)
        if (rng.next_double() < d)
          bank.at(oc, ic, k / 3, k % 3) =
              static_cast<std::int8_t>(rng.next_int(1, 9));
  }
  const PackedFilters packed = pack_filters(bank);
  const std::vector<int> sorted =
      group_filters(packed, GroupPolicy::kSortByNnz);
  std::vector<int> check = sorted;
  std::sort(check.begin(), check.end());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(check[static_cast<std::size_t>(i)], i);

  const std::int64_t natural_cycles = grouped_weight_cycles(
      packed, group_filters(packed, GroupPolicy::kIdentity));
  const std::int64_t sorted_cycles = grouped_weight_cycles(packed, sorted);
  EXPECT_LT(sorted_cycles, natural_cycles);
  // Lower bound: total nnz / ... cycles can't drop below the densest filter
  // per group; sanity: at least the per-filter mean.
  EXPECT_GE(sorted_cycles * 4, packed.total_nonzeros());
}

}  // namespace
}  // namespace tsca::pack
