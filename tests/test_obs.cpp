// Observability layer: span recorder, metrics registry, Chrome-trace
// exporter, and the end-to-end contract — a scaled VGG-16 through the
// PoolRuntime emits well-formed Chrome trace JSON whose per-layer span
// durations equal the LayerRun cycle counts.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pack/weight_pack.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

// --- Minimal JSON well-formedness checker (no external deps) ---------------

class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (peek() == ' ' || peek() == '\n' || peek() == '\t' || peek() == '\r')
      ++pos_;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    return eat('"');
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value() {  // NOLINT(misc-no-recursion)
    ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        ws();
        if (eat('}')) return true;
        do {
          ws();
          if (!string()) return false;
          ws();
          if (!eat(':')) return false;
          if (!value()) return false;
          ws();
        } while (eat(','));
        return eat('}');
      }
      case '[': {
        ++pos_;
        ws();
        if (eat(']')) return true;
        do {
          if (!value()) return false;
          ws();
        } while (eat(','));
        return eat(']');
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,-2.5,"x\"y"],"b":{}})"));
  EXPECT_TRUE(JsonChecker::valid("[]"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1)"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1}},)"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":})"));
}

// --- Recorder / Track ------------------------------------------------------

TEST(TraceRecorder, SpanAdvancesCursorCompleteDoesNot) {
  obs::Recorder rec;
  obs::Track& t = rec.track("unit0");
  t.set_now(100);
  t.span("a", "batch", 40, {{"k", 7}});
  EXPECT_EQ(t.now(), 140u);
  t.complete("wrap", "stripe", 100, 40);
  EXPECT_EQ(t.now(), 140u);

  // Find-or-create returns the same track (same cursor).
  EXPECT_EQ(&rec.track("unit0"), &t);
  EXPECT_NE(&rec.track("unit1"), &t);

  const std::vector<obs::TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].begin, 100u);
  EXPECT_EQ(events[0].duration, 40u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].second, 7);
  EXPECT_EQ(events[1].name, "wrap");
  EXPECT_EQ(rec.track_names(),
            (std::vector<std::string>{"unit0", "unit1"}));
}

TEST(Metrics, HistogramQuantilesAndJson) {
  obs::MetricsRegistry reg;
  reg.counter("c.requests").add(3);
  reg.counter("c.requests").add(2);
  EXPECT_EQ(reg.counter("c.requests").value(), 5);

  obs::Histogram& h = reg.histogram("lat");
  for (const std::int64_t v : {1, 2, 4, 8, 1000}) h.observe(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 1015);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_LE(h.quantile(0.5), 4);
  EXPECT_EQ(h.quantile(1.0), 1000);

  const std::string json = reg.json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("\"c.requests\":5"), std::string::npos);
  EXPECT_NE(reg.text().find("lat count=5"), std::string::npos);
}

// The Prometheus exposition (served by the socket front-end's metrics
// endpoint) must parse line by line and agree with the registry: sanitized
// tsca_-prefixed names, typed counters, and histograms as a cumulative
// non-decreasing le-ladder with consistent _sum/_count.
TEST(Metrics, PrometheusExpositionParsesAndMatchesRegistry) {
  obs::MetricsRegistry reg;
  reg.counter("serve.completed").add(7);
  obs::Histogram& h = reg.histogram("serve.latency_us");
  std::int64_t expect_sum = 0;
  for (const std::int64_t v : {0, 1, 3, 500, 1000}) {
    h.observe(v);
    expect_sum += v;
  }

  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("# TYPE tsca_serve_completed counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsca_serve_completed 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tsca_serve_latency_us histogram\n"),
            std::string::npos);

  // Parse every line: TYPE comments name a known type; every sample line is
  // `name[{le="bound"}] value`; the histogram's ladder is cumulative.
  std::istringstream is(text);
  std::string line;
  std::vector<std::pair<std::string, std::int64_t>> buckets;  // le → count
  std::int64_t sum = -1, count = -1;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE tsca_", 0) == 0) {
      const bool typed = line.ends_with(" counter") ||
                         line.ends_with(" histogram");
      EXPECT_TRUE(typed) << line;
      continue;
    }
    EXPECT_EQ(line.rfind("tsca_", 0), 0u) << line;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    const std::int64_t value = std::stoll(line.substr(sp + 1));
    if (name.rfind("tsca_serve_latency_us_bucket{le=\"", 0) == 0) {
      std::string le = name.substr(name.find('"') + 1);
      le = le.substr(0, le.find('"'));
      buckets.emplace_back(le, value);
    } else if (name == "tsca_serve_latency_us_sum") {
      sum = value;
    } else if (name == "tsca_serve_latency_us_count") {
      count = value;
    }
  }
  ASSERT_GE(buckets.size(), 2u);
  EXPECT_EQ(buckets.front().first, "1");
  EXPECT_EQ(buckets.front().second, 2) << "zeros and ones share bucket 0";
  for (std::size_t i = 1; i < buckets.size(); ++i)
    EXPECT_GE(buckets[i].second, buckets[i - 1].second)
        << "bucket ladder must be cumulative";
  EXPECT_EQ(buckets.back().first, "+Inf");
  EXPECT_EQ(buckets.back().second, 5);
  EXPECT_EQ(sum, expect_sum);
  EXPECT_EQ(count, 5);
}

// --- End-to-end: scaled VGG-16 through the PoolRuntime ---------------------

struct Vgg16Fixture {
  Vgg16Fixture()
      : net(nn::build_vgg16(
            {.input_extent = 32, .channel_divisor = 16, .num_classes = 10})),
        input(net.input_shape()) {
    Rng rng(301);
    nn::WeightsF weights = nn::init_random_weights(net, rng);
    quant::prune_weights(net, weights, quant::vgg16_han_profile());
    nn::FeatureMapF calib(net.input_shape());
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
    model = quant::quantize_network(net, weights, {calib});
    for (std::size_t i = 0; i < input.size(); ++i)
      input.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  }

  nn::Network net;
  quant::QuantizedModel model;
  nn::FeatureMapI8 input;
};

TEST(ObsEndToEnd, Vgg16PoolRuntimeLayerSpansMatchLayerRuns) {
  const Vgg16Fixture f;
  obs::Recorder rec;
  obs::MetricsRegistry metrics;

  driver::AcceleratorPool pool(core::ArchConfig::k256_opt(), {.workers = 4});
  driver::PoolRuntime runtime(
      pool, {.mode = driver::ExecMode::kCycle, .trace = &rec, .metrics = &metrics});
  const driver::NetworkRun run = runtime.run_network(f.net, f.model, f.input);

  // Per-layer spans, in record order, must mirror the accelerator layers:
  // same count, same durations (== LayerRun.cycles), laid end to end.
  std::vector<const driver::LayerRun*> accel;
  for (const driver::LayerRun& lr : run.layers)
    if (lr.on_accelerator) accel.push_back(&lr);
  ASSERT_FALSE(accel.empty());

  std::vector<obs::TraceEvent> layer_events;
  for (const obs::TraceEvent& ev : rec.events())
    if (ev.category == "layer") layer_events.push_back(ev);
  ASSERT_EQ(layer_events.size(), accel.size());

  std::uint64_t clock = 0;
  for (std::size_t i = 0; i < accel.size(); ++i) {
    SCOPED_TRACE("layer " + accel[i]->name);
    EXPECT_EQ(layer_events[i].duration, accel[i]->cycles);
    EXPECT_EQ(layer_events[i].begin, clock);
    EXPECT_EQ(layer_events[i].name, accel[i]->name);
    clock += accel[i]->cycles;
  }

  // Worker/DMA tracks exist alongside the layer timeline.
  const std::vector<std::string> tracks = rec.track_names();
  const auto has = [&](const std::string& name) {
    for (const std::string& t : tracks)
      if (t == name) return true;
    return false;
  };
  EXPECT_TRUE(has("layers"));
  EXPECT_TRUE(has("worker0"));
  EXPECT_TRUE(has("worker0.dma"));

  // The exported Chrome trace is well-formed JSON with the trace fields.
  const std::string json = obs::chrome_trace_json(rec);
  EXPECT_TRUE(JsonChecker::valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);

  // Metrics agree with the layer statistics.
  std::int64_t total_cycles = 0;
  for (const driver::LayerRun* lr : accel)
    total_cycles += static_cast<std::int64_t>(lr->cycles);
  EXPECT_EQ(metrics.counter("runtime.layers").value(),
            static_cast<std::int64_t>(accel.size()));
  EXPECT_EQ(metrics.counter("runtime.accel_cycles").value(), total_cycles);
  EXPECT_EQ(metrics.histogram("runtime.layer_cycles").count(),
            static_cast<std::int64_t>(accel.size()));
  EXPECT_TRUE(JsonChecker::valid(metrics.json()));
}

TEST(ObsEndToEnd, TracingDoesNotChangeResults) {
  const Vgg16Fixture f;
  driver::AcceleratorPool plain_pool(core::ArchConfig::k256_opt(),
                                     {.workers = 2});
  driver::PoolRuntime plain(plain_pool, {.mode = driver::ExecMode::kCycle});
  const driver::NetworkRun base = plain.run_network(f.net, f.model, f.input);

  obs::Recorder rec;
  driver::AcceleratorPool traced_pool(core::ArchConfig::k256_opt(),
                                      {.workers = 2});
  driver::PoolRuntime traced(
      traced_pool,
      {.mode = driver::ExecMode::kCycle, .trace = &rec, .trace_kernels = true});
  const driver::NetworkRun with = traced.run_network(f.net, f.model, f.input);

  EXPECT_EQ(base.logits, with.logits);
  ASSERT_EQ(base.layers.size(), with.layers.size());
  for (std::size_t i = 0; i < base.layers.size(); ++i) {
    EXPECT_EQ(base.layers[i].cycles, with.layers[i].cycles);
    EXPECT_EQ(base.layers[i].counters, with.layers[i].counters);
    EXPECT_EQ(base.layers[i].dma, with.layers[i].dma);
  }
  EXPECT_GT(rec.event_count(), 0u);
}

TEST(ObsEndToEnd, ServeRecordsPerRequestLatency) {
  const Vgg16Fixture f;
  constexpr int kRequests = 3;
  std::vector<nn::FeatureMapI8> inputs(static_cast<std::size_t>(kRequests),
                                       f.input);

  obs::Recorder rec;
  obs::MetricsRegistry metrics;
  driver::AcceleratorPool pool(core::ArchConfig::k256_opt(), {.workers = 2});
  driver::PoolRuntime runtime(
      pool, {.mode = driver::ExecMode::kCycle, .trace = &rec, .metrics = &metrics});
  const std::vector<driver::NetworkRun> served =
      runtime.serve(f.net, f.model, inputs);
  ASSERT_EQ(served.size(), inputs.size());

  EXPECT_EQ(metrics.counter("serve.requests").value(), kRequests);
  EXPECT_EQ(metrics.histogram("serve.request_sim_cycles").count(), kRequests);
  EXPECT_EQ(metrics.histogram("serve.request_wall_us").count(), kRequests);

  // Request spans cover exactly the per-request accelerator cycles.
  std::int64_t total_cycles = 0;
  for (const driver::NetworkRun& r : served)
    for (const driver::LayerRun& lr : r.layers)
      total_cycles += static_cast<std::int64_t>(lr.cycles);
  std::int64_t span_cycles = 0;
  int request_spans = 0;
  for (const obs::TraceEvent& ev : rec.events())
    if (ev.category == "request") {
      span_cycles += static_cast<std::int64_t>(ev.duration);
      ++request_spans;
    }
  EXPECT_EQ(request_spans, kRequests);
  EXPECT_EQ(span_cycles, total_cycles);
  EXPECT_EQ(metrics.histogram("serve.request_sim_cycles").sum(), total_cycles);

  const std::string json = obs::chrome_trace_json(rec);
  EXPECT_TRUE(JsonChecker::valid(json));
}

// Kernel-level tracing: per-kernel spans inside a batch account every cycle
// as busy or stalled.
TEST(ObsEndToEnd, KernelSpansAccountBusyAndStall) {
  Rng rng(303);
  nn::FeatureMapI8 fm({8, 12, 12});
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-30, 30));
  nn::FilterBankI8 filters({8, 8, 3, 3});
  for (std::size_t i = 0; i < filters.size(); ++i)
    if (rng.next_double() < 0.5)
      filters.data()[i] = static_cast<std::int8_t>(rng.next_int(-15, 15));

  obs::Recorder rec;
  core::Accelerator acc(core::ArchConfig::k256_opt());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime rt(acc, dram, dma,
                     {.mode = driver::ExecMode::kCycle, .trace = &rec,
                      .trace_kernels = true});
  driver::LayerRun run;
  rt.run_conv(pack::to_tiled(fm), pack::pack_filters(filters),
              std::vector<std::int32_t>(8, 1), nn::Requant{.shift = 6}, run);

  int kernel_spans = 0;
  for (const obs::TraceEvent& ev : rec.events()) {
    if (ev.category != "kernel") continue;
    ++kernel_spans;
    std::int64_t busy = -1;
    std::int64_t stall = -1;
    for (const auto& [key, value] : ev.args) {
      if (key == "busy_cycles") busy = value;
      if (key == "stall_cycles") stall = value;
    }
    ASSERT_GE(busy, 0);
    ASSERT_GE(stall, 0);
    EXPECT_EQ(static_cast<std::uint64_t>(busy + stall), ev.duration);
  }
  EXPECT_GT(kernel_spans, 0);
}

}  // namespace
}  // namespace tsca
