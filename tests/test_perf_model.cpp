// Perf-model validation: the analytic model must track the cycle-accurate
// engine within a few percent across shapes, sparsities and architectures.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "driver/perf_model.hpp"
#include "driver/runtime.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-25, 25));
  return fm;
}

nn::FilterBankI8 random_filters(nn::FilterShape shape, double density,
                                Rng& rng) {
  nn::FilterBankI8 bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    if (rng.next_double() < density)
      bank.data()[i] = static_cast<std::int8_t>(
          rng.next_bool() ? rng.next_int(1, 12) : rng.next_int(-12, -1));
  return bank;
}

struct GridCase {
  nn::FmShape in;
  int oc;
  double density;
  int lanes;
  int bank_words;
  int scratch_words;
};

class PerfModelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(PerfModelGrid, TracksCycleEngineWithinTolerance) {
  const GridCase& p = GetParam();
  Rng rng(0x5EED ^ static_cast<std::uint64_t>(p.in.c * 131 + p.oc * 17 +
                                              p.lanes));
  core::ArchConfig cfg = p.lanes == 1 ? core::ArchConfig::k16_unopt()
                                      : core::ArchConfig::k256_opt();
  cfg.bank_words = p.bank_words;
  cfg.weight_scratch_words = p.scratch_words;

  const nn::FeatureMapI8 input = random_fm(p.in, rng);
  const nn::FilterBankI8 filters =
      random_filters({p.oc, p.in.c, 3, 3}, p.density, rng);
  const pack::PackedFilters packed = pack::pack_filters(filters);
  const std::vector<std::int32_t> bias(static_cast<std::size_t>(p.oc), 0);

  core::Accelerator acc(cfg);
  sim::Dram dram(16u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  driver::LayerRun run;
  runtime.run_conv(pack::to_tiled(input), packed, bias,
                   nn::Requant{.shift = 6, .relu = true}, run);

  const driver::PerfModel model(cfg);
  const driver::ConvPerf perf = model.conv_layer(p.in, packed);

  const double measured = static_cast<double>(run.cycles);
  const double predicted = static_cast<double>(perf.cycles);
  EXPECT_NEAR(predicted / measured, 1.0, 0.06)
      << "model " << perf.cycles << " vs engine " << run.cycles;
  // Zero-skip accounting must be exact, not approximate.
  EXPECT_EQ(perf.macs_performed, run.counters.macs_performed);
  EXPECT_EQ(perf.weight_cmds, run.counters.weight_cmds);
  EXPECT_EQ(perf.weight_bubbles, run.counters.weight_bubbles);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfModelGrid,
    ::testing::Values(
        GridCase{{8, 16, 16}, 8, 1.0, 4, 4096, 64},   // dense
        GridCase{{8, 16, 16}, 8, 0.3, 4, 4096, 64},   // pruned
        GridCase{{16, 12, 12}, 16, 0.5, 4, 4096, 16}, // spill-heavy
        GridCase{{3, 20, 20}, 8, 0.8, 4, 4096, 64},   // ic < lanes
        GridCase{{8, 16, 16}, 8, 0.5, 1, 8192, 64},   // 16-unopt
        GridCase{{12, 14, 14}, 20, 0.4, 4, 512, 32},  // striped + chunked
        GridCase{{8, 16, 16}, 8, 0.05, 4, 4096, 64}), // very sparse
    [](const auto& info) {
      const GridCase& c = info.param;
      return "c" + std::to_string(c.in.c) + "h" + std::to_string(c.in.h) +
             "oc" + std::to_string(c.oc) + "d" +
             std::to_string(static_cast<int>(c.density * 100)) + "l" +
             std::to_string(c.lanes) + "b" + std::to_string(c.bank_words) +
             "s" + std::to_string(c.scratch_words);
    });

TEST(PerfModelPool, TracksCycleEngineForPoolAndPad) {
  Rng rng(99);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 4096;
  const nn::FeatureMapI8 input = random_fm({8, 16, 16}, rng);

  core::Accelerator acc(cfg);
  sim::Dram dram(16u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  const driver::PerfModel model(cfg);

  {
    driver::LayerRun run;
    runtime.run_pad_pool(pack::to_tiled(input), core::Opcode::kPool,
                         {8, 8, 8}, 2, 2, 0, 0, run);
    const driver::PoolPerf perf =
        model.pool_layer({8, 16, 16}, {8, 8, 8}, core::Opcode::kPool, 2, 2, 0,
                         0);
    EXPECT_NEAR(static_cast<double>(perf.cycles) /
                    static_cast<double>(run.cycles),
                1.0, 0.10)
        << "pool model " << perf.cycles << " vs " << run.cycles;
    EXPECT_EQ(perf.ops, run.counters.pool_ops);
  }
  {
    driver::LayerRun run;
    runtime.run_pad_pool(pack::to_tiled(input), core::Opcode::kPad,
                         {8, 18, 18}, 1, 1, -1, -1, run);
    const driver::PoolPerf perf = model.pool_layer(
        {8, 16, 16}, {8, 18, 18}, core::Opcode::kPad, 1, 1, -1, -1);
    EXPECT_NEAR(static_cast<double>(perf.cycles) /
                    static_cast<double>(run.cycles),
                1.0, 0.10)
        << "pad model " << perf.cycles << " vs " << run.cycles;
    EXPECT_EQ(perf.ops, run.counters.pool_ops);
  }
}

}  // namespace
}  // namespace tsca
