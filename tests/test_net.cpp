// Socket front-end: wire-protocol codecs, the TCP server/client pair, wire
// cancellation, and the Prometheus metrics endpoint.
//
// Every suite here is named Net* so tier1.sh's TSan configuration picks the
// file up (-R '...|Net...') — two threads per connection plus the serving
// pipeline is exactly the machinery TSan exists for.  All sockets are
// loopback with OS-assigned ephemeral ports (port 0), so tests are hermetic
// and parallel-safe.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/program.hpp"
#include "driver/program_registry.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "nn/zoo.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "serve/client.hpp"
#include "serve/load_generator.hpp"
#include "serve/net_server.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/dma.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

// One tiny VGG-16 compiled once and shared by every test in this binary.
struct SharedModel {
  SharedModel() {
    Rng rng(601);
    net = nn::build_vgg16(
        {.input_extent = 32, .channel_divisor = 16, .num_classes = 10});
    nn::WeightsF weights = nn::init_random_weights(net, rng);
    quant::prune_weights(net, weights, quant::vgg16_han_profile());
    nn::FeatureMapF calib(net.input_shape());
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
    model = quant::quantize_network(net, weights, {calib});
    program.emplace(driver::NetworkProgram::compile(
        net, model, core::ArchConfig::k256_opt()));
  }

  nn::Network net{nn::FmShape{}};
  quant::QuantizedModel model;
  std::optional<driver::NetworkProgram> program;
};

const SharedModel& shared_model() {
  static SharedModel* m = new SharedModel();
  return *m;
}

std::vector<std::int8_t> direct_logits(const nn::FeatureMapI8& input) {
  const SharedModel& m = shared_model();
  core::Accelerator acc(m.program->config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma,
                          {.mode = driver::ExecMode::kFast});
  return runtime.run_network(*m.program, input).logits;
}

// A raw loopback socket for speaking deliberately hostile bytes at the
// server, bypassing NetClient's well-formedness.
int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// --- Wire protocol codecs ---------------------------------------------

TEST(NetProtocol, RequestRoundTripsAllFields) {
  Rng rng(602);
  nn::FeatureMapI8 fm = random_fm({3, 5, 7}, rng);
  serve::SubmitOptions opts;
  opts.deadline_us = 123456;
  opts.priority = 2;
  opts.cycle_budget = 987654321;
  opts.model_id = "mobilenet_v1";

  const std::vector<std::uint8_t> payload =
      serve::encode_request(42, opts, fm);
  const serve::WireRequest back = serve::decode_request(payload);
  EXPECT_EQ(back.wire_id, 42u);
  EXPECT_EQ(back.opts.deadline_us, 123456);
  EXPECT_EQ(back.opts.priority, 2);
  EXPECT_EQ(back.opts.cycle_budget, 987654321u);
  EXPECT_EQ(back.opts.model_id, "mobilenet_v1");
  ASSERT_EQ(back.input.shape(), fm.shape());
  EXPECT_EQ(std::memcmp(back.input.data(), fm.data(), fm.size()), 0);

  // An empty model id (server default) survives the trip too.
  const serve::WireRequest dflt =
      serve::decode_request(serve::encode_request(43, {}, fm));
  EXPECT_TRUE(dflt.opts.model_id.empty());

  // No deadline survives the trip as a negative sentinel.
  serve::SubmitOptions nodl;
  nodl.deadline_us = -1;
  const serve::WireRequest back2 =
      serve::decode_request(serve::encode_request(7, nodl, fm));
  EXPECT_LT(back2.opts.deadline_us, 0);
}

TEST(NetProtocol, ResponseRoundTripsAllFields) {
  serve::Response r;
  r.status = serve::Status::kDeadlineMissed;
  r.executed = true;
  r.flat_output = true;
  r.batch_size = 5;
  r.latency.queued_us = 11;
  r.latency.batch_us = 22;
  r.latency.exec_us = 33;
  r.logits = {1, -2, 3, -4};
  r.error = "";

  const serve::WireResponse back =
      serve::decode_response(serve::encode_response(99, r));
  EXPECT_EQ(back.wire_id, 99u);
  EXPECT_EQ(back.response.id, 99u);
  EXPECT_EQ(back.response.status, serve::Status::kDeadlineMissed);
  EXPECT_TRUE(back.response.executed);
  EXPECT_TRUE(back.response.flat_output);
  EXPECT_EQ(back.response.batch_size, 5);
  EXPECT_EQ(back.response.latency.queued_us, 11);
  EXPECT_EQ(back.response.latency.batch_us, 22);
  EXPECT_EQ(back.response.latency.exec_us, 33);
  EXPECT_EQ(back.response.logits, (std::vector<std::int8_t>{1, -2, 3, -4}));

  serve::Response err;
  err.status = serve::Status::kError;
  err.error = "input shape mismatch";
  const serve::WireResponse back2 =
      serve::decode_response(serve::encode_response(100, err));
  EXPECT_EQ(back2.response.status, serve::Status::kError);
  EXPECT_EQ(back2.response.error, "input shape mismatch");
}

TEST(NetProtocol, MalformedPayloadsThrowInsteadOfMisparse) {
  Rng rng(603);
  const nn::FeatureMapI8 fm = random_fm({2, 3, 3}, rng);
  std::vector<std::uint8_t> payload = serve::encode_request(1, {}, fm);

  // Truncation anywhere in the payload is detected, never read past.
  std::vector<std::uint8_t> cut(payload.begin(), payload.end() - 5);
  EXPECT_THROW(serve::decode_request(cut), serve::ProtocolError);
  cut.assign(payload.begin(), payload.begin() + 3);
  EXPECT_THROW(serve::decode_request(cut), serve::ProtocolError);

  // Trailing bytes mean a layout disagreement — also an error.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_THROW(serve::decode_request(padded), serve::ProtocolError);

  // A response with an out-of-range status byte is rejected.
  serve::Response r;
  std::vector<std::uint8_t> resp = serve::encode_response(5, r);
  resp[8] = 250;  // status octet follows the u64 wire id
  EXPECT_THROW(serve::decode_response(resp), serve::ProtocolError);

  EXPECT_THROW(serve::decode_cancel({1, 2, 3}), serve::ProtocolError);
}

// Regression test for allocate-before-validate: get_fm sized the feature
// map from the wire-claimed dims before bounds-checking them against the
// payload, so a tiny frame claiming 65535³ elements (~280TB) escaped as
// std::bad_alloc/length_error — not a ProtocolError, so it blew past the
// reader's catch and std::terminate'd the process — while 1×65535×65535
// (~4.3GB) quietly zero-filled real memory.  The claim must be checked
// against the payload first and fail as ProtocolError.
TEST(NetProtocol, HugeClaimedFmDimsThrowBeforeAllocating) {
  Rng rng(610);
  const nn::FeatureMapI8 fm = random_fm({1, 1, 1}, rng);
  std::vector<std::uint8_t> payload = serve::encode_request(1, {}, fm);
  // Dims sit after u64 id | i64 deadline | u8 priority | u64 budget |
  // u8 nmodel (0 here).
  ASSERT_EQ(payload.size(), 33u);
  for (std::size_t i = 26; i < 32; ++i) payload[i] = 0xff;  // 65535³ claimed
  EXPECT_THROW(serve::decode_request(payload), serve::ProtocolError);
  payload[26] = 1;  // 1×65535×65535: an allocation that would succeed —
  payload[27] = 0;  // and must not happen either
  EXPECT_THROW(serve::decode_request(payload), serve::ProtocolError);
}

// The model-id length octet is bounds-checked before the bytes are touched:
// a wire-claimed length above kMaxModelIdBytes is a protocol error even when
// the payload happens to be long enough, and the encoder refuses to build an
// over-long id in the first place.
TEST(NetProtocol, OversizeModelIdRejectedBothDirections) {
  Rng rng(611);
  const nn::FeatureMapI8 fm = random_fm({1, 1, 1}, rng);
  std::vector<std::uint8_t> payload = serve::encode_request(1, {}, fm);
  payload[25] = static_cast<std::uint8_t>(serve::kMaxModelIdBytes + 1);
  EXPECT_THROW(serve::decode_request(payload), serve::ProtocolError);
  payload[25] = 0xff;
  EXPECT_THROW(serve::decode_request(payload), serve::ProtocolError);

  serve::SubmitOptions opts;
  opts.model_id.assign(serve::kMaxModelIdBytes + 1, 'a');
  EXPECT_THROW(serve::encode_request(2, opts, fm), Error);

  // Exactly at the cap round-trips.
  opts.model_id.assign(serve::kMaxModelIdBytes, 'a');
  const serve::WireRequest back =
      serve::decode_request(serve::encode_request(3, opts, fm));
  EXPECT_EQ(back.opts.model_id, opts.model_id);

  // A claimed in-bounds length the payload cannot satisfy truncates.
  std::vector<std::uint8_t> cut = serve::encode_request(4, {}, fm);
  cut[25] = 32;  // claims 32 id bytes the 1x1x1 payload does not hold
  EXPECT_THROW(serve::decode_request(cut), serve::ProtocolError);
}

// --- Socket end-to-end -------------------------------------------------

TEST(NetServe, EndToEndBitExactOverSocket) {
  const SharedModel& m = shared_model();
  Rng rng(604);
  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(*m.program, opts);
  serve::NetServer net(server);
  ASSERT_GT(net.port(), 0);
  serve::NetClient client("127.0.0.1", net.port());

  constexpr int kRequests = 4;
  std::vector<nn::FeatureMapI8> inputs;
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(random_fm(m.net.input_shape(), rng));
    futures.push_back(client.submit(inputs.back()));
  }
  for (int i = 0; i < kRequests; ++i) {
    const serve::Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, serve::Status::kOk);
    EXPECT_TRUE(r.executed);
    EXPECT_EQ(r.logits, direct_logits(inputs[static_cast<std::size_t>(i)]))
        << "request " << i;
    EXPECT_GE(r.latency.exec_us, 0);
  }
  client.close();
  net.stop();
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.completed").value(), kRequests);
}

TEST(NetServe, LoadGeneratorDrivesTheSocketPath) {
  const SharedModel& m = shared_model();
  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(*m.program, opts);
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());

  serve::LoadOptions load;
  load.requests = 8;
  load.concurrency = 2;
  load.seed = 11;
  const serve::LoadReport report =
      serve::run_load(client, m.net.input_shape(), load);
  EXPECT_EQ(report.submitted, 8);
  EXPECT_EQ(report.ok, 8);
  EXPECT_EQ(report.errors, 0);
  EXPECT_GT(report.goodput_rps, 0.0);
}

TEST(NetServe, BadShapeComesBackAsErrorResponse) {
  const SharedModel& m = shared_model();
  Rng rng(605);
  nn::FmShape bad = m.net.input_shape();
  bad.c += 1;
  serve::Server server(*m.program, {});
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());

  const serve::Response r = client.submit(random_fm(bad, rng)).get();
  EXPECT_EQ(r.status, serve::Status::kError);
  EXPECT_FALSE(r.executed);
  EXPECT_FALSE(r.error.empty());

  // The connection survives an execution error; a well-formed request on
  // the same client still completes.
  const nn::FeatureMapI8 good = random_fm(m.net.input_shape(), rng);
  const serve::Response ok = client.submit(good).get();
  EXPECT_EQ(ok.status, serve::Status::kOk);
  EXPECT_EQ(ok.logits, direct_logits(good));
}

TEST(NetServe, WireCancelRemovesQueuedRequest) {
  const SharedModel& m = shared_model();
  Rng rng(606);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow head pins the worker
  opts.batch.max_batch = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());

  std::future<serve::Response> head =
      client.submit(random_fm(m.net.input_shape(), rng));
  while (server.metrics().counter("serve.batches").value() < 1)
    std::this_thread::sleep_for(std::chrono::microseconds(100));

  std::uint64_t wire_id = 0;
  std::future<serve::Response> doomed =
      client.submit(random_fm(m.net.input_shape(), rng), {}, &wire_id);
  // The request is queued behind the in-flight head; make sure the server
  // has actually admitted it (its id is mapped once submit_with returned)
  // before cancelling.
  while (server.metrics().counter("serve.admitted").value() < 2)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  ASSERT_TRUE(client.cancel(wire_id));

  const serve::Response r = doomed.get();
  EXPECT_EQ(r.status, serve::Status::kCancelled);
  EXPECT_FALSE(r.executed);
  EXPECT_EQ(head.get().status, serve::Status::kOk);
  EXPECT_EQ(server.metrics().counter("serve.cancelled_by_client").value(), 1);
}

TEST(NetServe, MetricsEndpointServesPrometheusMatchingRegistry) {
  const SharedModel& m = shared_model();
  Rng rng(607);
  serve::Server server(*m.program, {});
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());

  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i)
    EXPECT_EQ(client.submit(random_fm(m.net.input_shape(), rng)).get().status,
              serve::Status::kOk);

  const std::string text = client.metrics_text();
  // The exposition matches the live registry value-for-value.
  EXPECT_NE(text.find("# TYPE tsca_serve_completed counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsca_serve_completed " + std::to_string(kRequests) +
                      "\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tsca_serve_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("tsca_serve_latency_us_count " +
                      std::to_string(kRequests) + "\n"),
            std::string::npos);
  const std::string sum_line =
      "tsca_serve_latency_us_sum " +
      std::to_string(server.metrics().histogram("serve.latency_us").sum());
  EXPECT_NE(text.find(sum_line), std::string::npos) << text;
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} " + std::to_string(kRequests)),
            std::string::npos);
}

TEST(NetServe, MalformedFrameDropsConnectionNotServer) {
  const SharedModel& m = shared_model();
  Rng rng(608);
  serve::Server server(*m.program, {});
  serve::NetServer net(server);

  // Raw socket speaking garbage: a frame with an unknown type octet.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(net.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::uint8_t garbage[] = {3, 0, 0, 0, 99, 1, 2};  // len=3, type=99
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  // The server drops the connection: recv sees EOF, not a hang.
  char buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  // And keeps serving well-formed clients.
  serve::NetClient client("127.0.0.1", net.port());
  const nn::FeatureMapI8 good = random_fm(m.net.input_shape(), rng);
  EXPECT_EQ(client.submit(good).get().status, serve::Status::kOk);
}

// The same hostile frame over the socket: a huge claimed feature map costs
// the connection (ProtocolError → drop), never the process and never the
// memory — pre-fix this test died with the server on std::terminate.
TEST(NetServe, HugeClaimedRequestDropsConnectionNotServer) {
  const SharedModel& m = shared_model();
  Rng rng(611);
  serve::Server server(*m.program, {});
  serve::NetServer net(server);

  std::vector<std::uint8_t> payload =
      serve::encode_request(1, {}, random_fm({1, 1, 1}, rng));
  for (std::size_t i = 26; i < 32; ++i) payload[i] = 0xff;
  const int fd = connect_raw(net.port());
  ASSERT_GE(fd, 0);
  serve::write_frame(fd, serve::MsgType::kRequest, payload);
  char buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // dropped: EOF, no crash
  ::close(fd);

  // And keeps serving well-formed clients.
  serve::NetClient client("127.0.0.1", net.port());
  EXPECT_EQ(client.submit(random_fm(m.net.input_shape(), rng)).get().status,
            serve::Status::kOk);
}

// Two in-flight requests sharing a wire_id would cross their response and
// cancel routing (the first completion erases the second's cancel mapping);
// the server rejects the duplicate like any other malformed traffic.
TEST(NetServe, DuplicateInFlightWireIdDropsConnection) {
  const SharedModel& m = shared_model();
  Rng rng(612);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow: the first stays in flight
  serve::Server server(*m.program, opts);
  serve::NetServer net(server);

  const int fd = connect_raw(net.port());
  ASSERT_GE(fd, 0);
  const std::vector<std::uint8_t> payload =
      serve::encode_request(7, {}, random_fm(m.net.input_shape(), rng));
  serve::write_frame(fd, serve::MsgType::kRequest, payload);
  serve::write_frame(fd, serve::MsgType::kRequest, payload);
  char buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // duplicate costs the conn
  ::close(fd);
}

// Regression test for the per-connection leak: close()d connections kept
// their fd and two finished threads in conns_ until stop(), so a long-lived
// server (one metrics scrape per connection, forever) ran out of fds.  The
// accept loop now reaps finished connections, so churning clients must
// drive the tracked set back down to the live probe itself.
TEST(NetServe, FinishedConnectionsAreReaped) {
  const SharedModel& m = shared_model();
  Rng rng(613);
  serve::Server server(*m.program, {});
  serve::NetServer net(server);

  for (int i = 0; i < 8; ++i) {
    serve::NetClient c("127.0.0.1", net.port());
    EXPECT_EQ(c.submit(random_fm(m.net.input_shape(), rng)).get().status,
              serve::Status::kOk);
    c.close();
  }
  // Reaping rides the accept path, and a just-closed connection's threads
  // wind down asynchronously — so probe until the sweep has caught up: the
  // tracked set must shrink to the probe plus at most one straggler.
  std::size_t tracked = ~std::size_t{0};
  for (int i = 0; i < 500 && tracked > 2; ++i) {
    serve::NetClient probe("127.0.0.1", net.port());
    tracked = net.tracked_connections();
    probe.close();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(tracked, 2u) << "closed connections were never reaped";
}

// Reference logits for a registry-served model: acquire a lease and run the
// compiled program on a private simulator instance.
std::vector<std::int8_t> registry_logits(driver::ProgramRegistry& registry,
                                         const std::string& id,
                                         const nn::FeatureMapI8& input) {
  const driver::ProgramHandle h = registry.acquire(id);
  core::Accelerator acc(registry.config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  return runtime.run_network(h.program(), input).logits;
}

// An unknown model id over the wire is a typed rejection — the request
// fails with kRejectedUnknownModel, but the connection survives and the
// next request (routed to the server default) completes normally.
TEST(NetServe, UnknownModelRejectionKeepsConnectionAlive) {
  const zoo::ZooModel mlp = zoo::make_ternary_mlp(13);
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("mlp", mlp.net, mlp.model);
  serve::Server server(registry, "mlp", {});
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());

  Rng rng(614);
  serve::SubmitOptions unknown;
  unknown.model_id = "resnet_900";  // well-formed id, never registered
  const serve::Response r =
      client.submit(random_fm(mlp.net.input_shape(), rng), unknown).get();
  EXPECT_EQ(r.status, serve::Status::kRejectedUnknownModel);
  EXPECT_FALSE(r.executed);

  const nn::FeatureMapI8 good = random_fm(mlp.net.input_shape(), rng);
  const serve::Response ok = client.submit(good).get();
  EXPECT_EQ(ok.status, serve::Status::kOk);
  EXPECT_EQ(ok.logits, registry_logits(registry, "mlp", good));
  EXPECT_EQ(
      server.metrics().counter("serve.rejected_unknown_model").value(), 1);
}

// Two models with different input shapes interleaved over one socket: the
// model id routes each request to its own program, results stay bit-exact
// per model, and per-model serving metrics attribute the traffic.
TEST(NetServe, RoutesMixedModelsOverOneSocket) {
  const zoo::ZooModel mlp = zoo::make_ternary_mlp(13);
  const zoo::ZooModel mobile = zoo::make_mobile_depthwise(11);
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("mlp", mlp.net, mlp.model);
  registry.add_model("mobile", mobile.net, mobile.model);
  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(registry, "mlp", opts);
  serve::NetServer net(server);
  serve::NetClient client("127.0.0.1", net.port());

  Rng rng(615);
  constexpr int kPerModel = 3;
  std::vector<nn::FeatureMapI8> mlp_in, mobile_in;
  std::vector<std::future<serve::Response>> mlp_f, mobile_f;
  for (int i = 0; i < kPerModel; ++i) {
    serve::SubmitOptions to_mlp;
    to_mlp.model_id = "mlp";
    mlp_in.push_back(random_fm(mlp.net.input_shape(), rng));
    mlp_f.push_back(client.submit(mlp_in.back(), to_mlp));
    serve::SubmitOptions to_mobile;
    to_mobile.model_id = "mobile";
    mobile_in.push_back(random_fm(mobile.net.input_shape(), rng));
    mobile_f.push_back(client.submit(mobile_in.back(), to_mobile));
  }
  for (int i = 0; i < kPerModel; ++i) {
    const serve::Response a = mlp_f[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(a.status, serve::Status::kOk);
    EXPECT_EQ(a.logits,
              registry_logits(registry, "mlp",
                              mlp_in[static_cast<std::size_t>(i)]))
        << "mlp request " << i;
    const serve::Response b = mobile_f[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(b.status, serve::Status::kOk);
    EXPECT_EQ(b.logits,
              registry_logits(registry, "mobile",
                              mobile_in[static_cast<std::size_t>(i)]))
        << "mobile request " << i;
  }
  client.close();
  net.stop();
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.model.mlp.completed").value(),
            kPerModel);
  EXPECT_EQ(server.metrics().counter("serve.model.mobile.completed").value(),
            kPerModel);
}

TEST(NetServe, ConnectionsAreDistinctFairShareClients) {
  const SharedModel& m = shared_model();
  Rng rng(609);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow head pins the worker
  opts.queue_capacity = 2;
  opts.batch.max_batch = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);
  serve::NetServer net(server);
  serve::NetClient flooder("127.0.0.1", net.port());
  serve::NetClient newcomer("127.0.0.1", net.port());

  std::future<serve::Response> head =
      flooder.submit(random_fm(m.net.input_shape(), rng));
  while (server.metrics().counter("serve.batches").value() < 1)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  // The flooding connection fills the queue; the second connection's push
  // evicts one of its entries (share = 2/2 = 1 each).
  std::vector<std::future<serve::Response>> flood;
  for (int i = 0; i < 2; ++i)
    flood.push_back(flooder.submit(random_fm(m.net.input_shape(), rng)));
  while (server.metrics().counter("serve.admitted").value() < 3)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  std::future<serve::Response> in =
      newcomer.submit(random_fm(m.net.input_shape(), rng));

  int quota = 0, ok = 0;
  for (auto& f : flood) {
    const serve::Response r = f.get();
    if (r.status == serve::Status::kRejectedQuota) ++quota;
    if (r.status == serve::Status::kOk) ++ok;
  }
  EXPECT_EQ(quota, 1) << "one flooder entry must yield to the newcomer";
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(in.get().status, serve::Status::kOk);
  EXPECT_EQ(head.get().status, serve::Status::kOk);
}

}  // namespace
}  // namespace tsca
