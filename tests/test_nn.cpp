// NN substrate: tensors, reference layers, network topology, VGG-16.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/network.hpp"
#include "nn/vgg16.hpp"
#include "util/rng.hpp"

namespace tsca::nn {
namespace {

TEST(Tensor, IndexingIsRowMajorCHW) {
  FeatureMapI8 fm({2, 3, 4});
  fm.at(1, 2, 3) = 42;
  EXPECT_EQ(fm.data()[1 * 12 + 2 * 4 + 3], 42);
  EXPECT_THROW(fm.at(2, 0, 0), Error);
  EXPECT_THROW(fm.at(0, 3, 0), Error);
  EXPECT_THROW(fm.at(0, 0, -1), Error);
}

TEST(Tensor, FilterBankIndexingIsOIHW) {
  FilterBankI8 bank({2, 3, 2, 2});
  bank.at(1, 2, 1, 0) = 7;
  EXPECT_EQ(bank.data()[(1 * 3 + 2) * 4 + 1 * 2 + 0], 7);
  EXPECT_THROW(bank.at(0, 3, 0, 0), Error);
}

TEST(ConvOutExtent, StandardFormula) {
  EXPECT_EQ(conv_out_extent(224, 3, 1), 222);
  EXPECT_EQ(conv_out_extent(226, 3, 1), 224);
  EXPECT_EQ(conv_out_extent(8, 2, 2), 4);
  EXPECT_EQ(conv_out_extent(7, 3, 2), 3);
  EXPECT_THROW(conv_out_extent(2, 3, 1), Error);
}

TEST(Requantize, RoundHalfAwayFromZero) {
  EXPECT_EQ(requantize(96, {.shift = 6, .relu = false}), 2);   // 1.5 -> 2
  EXPECT_EQ(requantize(-96, {.shift = 6, .relu = false}), -2);
  EXPECT_EQ(requantize(95, {.shift = 6, .relu = false}), 1);
  EXPECT_EQ(requantize(-95, {.shift = 6, .relu = false}), -1);
  EXPECT_EQ(requantize(5, {.shift = 0, .relu = false}), 5);
  EXPECT_EQ(requantize(-200, {.shift = 0, .relu = false}), -127);
  EXPECT_EQ(requantize(-200, {.shift = 0, .relu = true}), 0);
}

TEST(ConvFloat, HandComputedExample) {
  FeatureMapF in({1, 3, 3});
  for (int i = 0; i < 9; ++i) in.data()[i] = static_cast<float>(i);
  FilterBankF filters({1, 1, 2, 2});
  filters.at(0, 0, 0, 0) = 1.0f;
  filters.at(0, 0, 0, 1) = 2.0f;
  filters.at(0, 0, 1, 0) = 3.0f;
  filters.at(0, 0, 1, 1) = 4.0f;
  const FeatureMapF out = conv2d_f(in, filters, {10.0f}, 1, false);
  // out(0,0) = 0*1 + 1*2 + 3*3 + 4*4 + 10 = 37
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 37.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 4 + 10 + 21 + 32 + 10.0f);
}

TEST(ConvInt8, MatchesFloatOnExactValues) {
  Rng rng(4);
  FeatureMapI8 in({3, 6, 6});
  for (std::size_t i = 0; i < in.size(); ++i)
    in.data()[i] = static_cast<std::int8_t>(rng.next_int(-10, 10));
  FilterBankI8 filters({2, 3, 3, 3});
  for (std::size_t i = 0; i < filters.size(); ++i)
    filters.data()[i] = static_cast<std::int8_t>(rng.next_int(-5, 5));
  const FeatureMapI32 raw = conv2d_i8_raw(in, filters, {100, -100}, 1);

  // Cross-check against the float path on identical values.
  FeatureMapF in_f(in.shape());
  for (std::size_t i = 0; i < in.size(); ++i)
    in_f.data()[i] = static_cast<float>(in.data()[i]);
  FilterBankF filters_f(filters.shape());
  for (std::size_t i = 0; i < filters.size(); ++i)
    filters_f.data()[i] = static_cast<float>(filters.data()[i]);
  const FeatureMapF out_f = conv2d_f(in_f, filters_f, {100.0f, -100.0f}, 1,
                                     false);
  for (std::size_t i = 0; i < raw.size(); ++i)
    EXPECT_FLOAT_EQ(static_cast<float>(raw.data()[i]), out_f.data()[i]);
}

TEST(MaxPool, StrideAndWindowCombos) {
  FeatureMapI8 in({1, 4, 4});
  for (int i = 0; i < 16; ++i)
    in.data()[i] = static_cast<std::int8_t>(i);
  const FeatureMapI8 p22 = maxpool_i8(in, {2, 2});
  EXPECT_EQ(p22.at(0, 0, 0), 5);
  EXPECT_EQ(p22.at(0, 1, 1), 15);
  const FeatureMapI8 p31 = maxpool_i8(in, {3, 1});
  EXPECT_EQ(p31.at(0, 0, 0), 10);
  EXPECT_EQ(p31.shape(), (FmShape{1, 2, 2}));
}

TEST(Pad, ZeroPerimeter) {
  FeatureMapI8 in({1, 2, 2});
  in.at(0, 0, 0) = 1;
  in.at(0, 1, 1) = 4;
  const FeatureMapI8 out = pad_i8(in, Padding{1, 2, 0, 1});
  EXPECT_EQ(out.shape(), (FmShape{1, 5, 3}));
  EXPECT_EQ(out.at(0, 0, 0), 0);
  EXPECT_EQ(out.at(0, 1, 0), 1);
  EXPECT_EQ(out.at(0, 2, 1), 4);
  EXPECT_EQ(out.at(0, 4, 2), 0);
}

TEST(Softmax, NormalizesAndOrdersLikeInput) {
  const std::vector<float> out = softmax_f({1.0f, 3.0f, 2.0f});
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-6);
  EXPECT_GT(out[1], out[2]);
  EXPECT_GT(out[2], out[0]);
}

TEST(FcInt8, MatrixVectorWithRequant) {
  const std::vector<std::int8_t> in = {1, 2, 3};
  const std::vector<std::int8_t> w = {1, 0, 0, /*row1*/ 1, 1, 1};
  const std::vector<std::int32_t> bias = {0, 10};
  const std::vector<std::int8_t> out =
      fc_i8(in, w, bias, 2, {.shift = 1, .relu = false});
  EXPECT_EQ(out[0], 1);  // round(1/2) = 1 (half away from zero)
  EXPECT_EQ(out[1], 8);  // (6+10)/2
}

// --- network topology ----------------------------------------------------

TEST(Network, ShapeInferenceThroughAllLayerKinds) {
  Network net({3, 8, 8}, "t");
  net.add_pad(Padding::uniform(1))
      .add_conv({.out_c = 5, .kernel = 3, .stride = 1, .relu = true})
      .add_maxpool({.size = 2, .stride = 2})
      .add_flatten()
      .add_fc({.out_dim = 7, .relu = false})
      .add_softmax();
  const std::vector<LayerShape> shapes = net.infer_shapes();
  EXPECT_EQ(shapes[0].fm, (FmShape{3, 10, 10}));
  EXPECT_EQ(shapes[1].fm, (FmShape{5, 8, 8}));
  EXPECT_EQ(shapes[2].fm, (FmShape{5, 4, 4}));
  EXPECT_EQ(shapes[3].flat_dim, 80);
  EXPECT_EQ(shapes[4].flat_dim, 7);
  EXPECT_EQ(shapes[5].flat_dim, 7);
}

TEST(Network, RejectsInconsistentTopologies) {
  {
    Network net({3, 8, 8});
    net.add_flatten().add_conv({.out_c = 2});
    EXPECT_THROW(net.infer_shapes(), ConfigError);
  }
  {
    Network net({3, 8, 8});
    net.add_fc({.out_dim = 4});
    EXPECT_THROW(net.infer_shapes(), ConfigError);
  }
  {
    Network net({3, 4, 4});
    net.add_conv({.out_c = 2, .kernel = 5});
    EXPECT_THROW(net.infer_shapes(), ConfigError);
  }
  {
    Network net({3, 8, 8});
    net.add_flatten().add_flatten();
    EXPECT_THROW(net.infer_shapes(), ConfigError);
  }
}

TEST(Network, ConvMacsMatchHandCount) {
  Network net({3, 8, 8});
  net.add_pad(Padding::uniform(1))
      .add_conv({.out_c = 4, .kernel = 3, .stride = 1, .relu = true});
  const auto macs = net.conv_macs();
  EXPECT_EQ(macs[0], 0);
  EXPECT_EQ(macs[1], 4LL * 8 * 8 * 3 * 3 * 3);
}

TEST(Vgg16, FullSizeTopology) {
  const Network net = build_vgg16();
  const std::vector<std::size_t> convs = vgg16_conv_layers(net);
  EXPECT_EQ(convs.size(), 13u);
  const std::vector<LayerShape> shapes = net.infer_shapes();
  // Block outputs: 64x224, 128x112, 256x56, 512x28, 512x14, pooled to 7.
  EXPECT_EQ(shapes[convs[1]].fm, (FmShape{64, 224, 224}));
  EXPECT_EQ(shapes[convs[12]].fm, (FmShape{512, 14, 14}));
  EXPECT_EQ(shapes.back().flat_dim, 1000);
  // 15.3 GMACs total, the well-known VGG-16 number (±1 %).
  std::int64_t total = 0;
  for (std::int64_t m : net.conv_macs()) total += m;
  EXPECT_NEAR(static_cast<double>(total), 15.35e9, 0.2e9);
}

TEST(Vgg16, ScaledVariantKeepsTopologyShape) {
  const Network net = build_vgg16(
      {.input_extent = 64, .channel_divisor = 16, .num_classes = 10});
  EXPECT_EQ(vgg16_conv_layers(net).size(), 13u);
  EXPECT_EQ(net.infer_shapes().back().flat_dim, 10);
  EXPECT_THROW(build_vgg16({.input_extent = 30}), Error);
}

TEST(Vgg16, ForwardFloatRunsEndToEnd) {
  Rng rng(12);
  const Network net = build_vgg16(
      {.input_extent = 32, .channel_divisor = 32, .num_classes = 5});
  const WeightsF weights = init_random_weights(net, rng);
  FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.1);
  const std::vector<float> probs = forward_f(net, weights, image);
  ASSERT_EQ(probs.size(), 5u);
  float sum = 0.0f;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(InitRandomWeights, DeterministicInSeed) {
  const Network net = build_vgg16(
      {.input_extent = 32, .channel_divisor = 32, .num_classes = 5});
  Rng a(9);
  Rng b(9);
  Rng c(10);
  const WeightsF wa = init_random_weights(net, a);
  const WeightsF wb = init_random_weights(net, b);
  const WeightsF wc = init_random_weights(net, c);
  const std::size_t conv0 = vgg16_conv_layers(net)[0];
  EXPECT_EQ(wa.conv[conv0], wb.conv[conv0]);
  EXPECT_NE(wa.conv[conv0], wc.conv[conv0]);
}

}  // namespace
}  // namespace tsca::nn
