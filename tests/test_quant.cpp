// Quantization: sign-magnitude codec, power-of-two scaling, calibration,
// pruning.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/vgg16.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "quant/sm8.hpp"
#include "util/rng.hpp"

namespace tsca::quant {
namespace {

TEST(Sm8, RoundTripsEveryRepresentableValue) {
  for (int v = -127; v <= 127; ++v) {
    const Sm8Bits bits = sm8_encode(v);
    EXPECT_EQ(sm8_decode(bits), v);
  }
}

TEST(Sm8, SignBitAndMagnitudeLayout) {
  EXPECT_EQ(sm8_encode(5), 0x05);
  EXPECT_EQ(sm8_encode(-5), 0x85);
  EXPECT_EQ(sm8_encode(127), 0x7f);
  EXPECT_EQ(sm8_encode(-127), 0xff);
  EXPECT_EQ(sm8_encode(0), 0x00);
}

TEST(Sm8, NegativeZeroDecodesToZeroAndCanonicalizes) {
  EXPECT_EQ(sm8_decode(0x80), 0);
  EXPECT_FALSE(sm8_is_canonical(0x80));
  EXPECT_EQ(sm8_canonicalize(0x80), 0x00);
  EXPECT_TRUE(sm8_is_canonical(0x7f));
  EXPECT_EQ(sm8_canonicalize(0xff), 0xff);
}

TEST(Sm8, EncodeRejectsOutOfRange) {
  EXPECT_THROW(sm8_encode(128), Error);
  EXPECT_THROW(sm8_encode(-128), Error);
}

TEST(Sm8, SaturatingEncodeClamps) {
  EXPECT_EQ(sm8_decode(sm8_encode_sat(300)), 127);
  EXPECT_EQ(sm8_decode(sm8_encode_sat(-300)), -127);
  EXPECT_EQ(sm8_decode(sm8_encode_sat(42)), 42);
}

TEST(ChooseExponent, LargestScaleThatFits) {
  for (const float max_abs : {0.01f, 0.37f, 1.0f, 5.7f, 126.9f, 1000.0f}) {
    const int exp = choose_exponent(max_abs);
    EXPECT_LE(std::round(static_cast<double>(max_abs) * std::ldexp(1.0, exp)),
              127.0)
        << max_abs;
    // One more bit would overflow (unless we hit the cap).
    if (exp < kMaxExp) {
      EXPECT_GT(
          std::round(static_cast<double>(max_abs) * std::ldexp(1.0, exp + 1)),
          127.0)
          << max_abs;
    }
  }
  EXPECT_EQ(choose_exponent(0.0f), kMaxExp);
}

TEST(QuantizeValue, RoundsAndSaturates) {
  EXPECT_EQ(quantize_value(0.5f, 1), 1);
  EXPECT_EQ(quantize_value(0.24f, 2), 1);
  EXPECT_EQ(quantize_value(-0.26f, 2), -1);
  EXPECT_EQ(quantize_value(1000.0f, 0), 127);
  EXPECT_EQ(quantize_value(-1000.0f, 0), -127);
}

TEST(QuantizeDequantize, ErrorBoundedByHalfStep) {
  Rng rng(9);
  const int exp = 5;
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(rng.next_gaussian());
    if (std::abs(v) * 32.0 > 127) continue;  // saturation excluded
    const float round_trip = dequantize_value(quantize_value(v, exp), exp);
    EXPECT_LE(std::abs(round_trip - v), 0.5 / 32.0 + 1e-7);
  }
}

TEST(QuantizeNetwork, ShiftsAreNonNegativeAndExponentsConsistent) {
  Rng rng(77);
  const nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 32, .num_classes = 10});
  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  nn::FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.3);
  const QuantizedModel model = quantize_network(net, weights, {image});

  int exp_in = model.input_exp;
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    if (spec.kind == nn::LayerKind::kConv) {
      const nn::Requant& rq = model.weights.conv_requant[i];
      EXPECT_GE(rq.shift, 0);
      EXPECT_EQ(rq.shift,
                exp_in + model.weight_exp[i] - model.act_exp[i]);
      EXPECT_EQ(rq.relu, spec.conv.relu);
    } else if (spec.kind == nn::LayerKind::kFullyConnected) {
      EXPECT_GE(model.weights.fc_requant[i].shift, 0);
    } else {
      // Value-preserving layers keep the exponent.
      EXPECT_EQ(model.act_exp[i], exp_in);
    }
    exp_in = model.act_exp[i];
  }
}

TEST(QuantizeNetwork, BiasUsesInputTimesWeightScale) {
  Rng rng(78);
  nn::Network net({4, 8, 8}, "t");
  net.add_conv({.out_c = 4, .kernel = 3, .stride = 1, .relu = false});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  weights.conv_bias[0] = {0.5f, -0.25f, 1.0f, 0.0f};
  nn::FeatureMapF image({4, 8, 8});
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.2);
  const QuantizedModel model = quantize_network(net, weights, {image});
  const double scale =
      std::ldexp(1.0, model.input_exp + model.weight_exp[0]);
  EXPECT_EQ(model.weights.conv_bias[0][0], std::llround(0.5 * scale));
  EXPECT_EQ(model.weights.conv_bias[0][1], std::llround(-0.25 * scale));
  EXPECT_EQ(model.weights.conv_bias[0][3], 0);
}

TEST(Sparsity, CountsZeroFraction) {
  nn::FilterBankI8 bank({1, 1, 2, 2});
  bank.at(0, 0, 0, 0) = 3;
  EXPECT_DOUBLE_EQ(sparsity(bank), 0.75);
}

// --- pruning -------------------------------------------------------------

TEST(Prune, AchievesTargetDensityAndKeepsLargest) {
  Rng rng(80);
  nn::Network net({8, 16, 16}, "t");
  net.add_conv({.out_c = 8, .kernel = 3, .stride = 1, .relu = true});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  const nn::FilterBankF original = weights.conv[0];
  const auto achieved = prune_weights(
      net, weights, PruneProfile::uniform(0.3, 1, 0));
  ASSERT_EQ(achieved.size(), 1u);
  EXPECT_NEAR(achieved[0], 0.3, 0.01);

  // Every surviving weight is >= every pruned weight in magnitude.
  float min_kept = 1e9f;
  float max_dropped = 0.0f;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (weights.conv[0].data()[i] != 0.0f)
      min_kept = std::min(min_kept, std::abs(original.data()[i]));
    else
      max_dropped = std::max(max_dropped, std::abs(original.data()[i]));
  }
  EXPECT_GE(min_kept, max_dropped);
}

TEST(Prune, HanProfileMatchesPublishedDensities) {
  const PruneProfile profile = vgg16_han_profile();
  ASSERT_EQ(profile.conv_density.size(), 13u);
  ASSERT_EQ(profile.fc_density.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.conv_density[0], 0.58);
  EXPECT_DOUBLE_EQ(profile.conv_density[1], 0.22);
  EXPECT_DOUBLE_EQ(profile.fc_density[2], 0.23);
  for (double d : profile.conv_density) {
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Prune, VggEndToEndDensitiesTrackProfile) {
  Rng rng(81);
  const nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 8, .num_classes = 10});
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  const auto achieved = prune_weights(net, weights, vgg16_han_profile());
  const PruneProfile profile = vgg16_han_profile();
  ASSERT_EQ(achieved.size(), 13u);
  for (std::size_t i = 0; i < achieved.size(); ++i)
    EXPECT_NEAR(achieved[i], profile.conv_density[i], 0.02) << "layer " << i;
}

TEST(Prune, DeterministicAcrossRuns) {
  const auto make = [] {
    Rng rng(82);
    nn::Network net({4, 8, 8}, "t");
    net.add_conv({.out_c = 4, .kernel = 3, .stride = 1, .relu = true});
    nn::WeightsF weights = nn::init_random_weights(net, rng);
    prune_weights(net, weights, PruneProfile::uniform(0.4, 1, 0));
    return weights.conv[0];
  };
  EXPECT_EQ(make(), make());
}

TEST(Prune, UniformProfileValidatesDensity) {
  EXPECT_THROW(PruneProfile::uniform(1.5, 2, 2), Error);
  EXPECT_THROW(PruneProfile::uniform(-0.1, 2, 2), Error);
}

}  // namespace
}  // namespace tsca::quant
