// Ternary-network extension (paper §VII future work): quantization, the
// dense 1-byte packed stream, and end-to-end accelerator execution.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "driver/perf_model.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "pack/lane_stream.hpp"
#include "quant/ternary.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FilterBankF random_bank_f(nn::FilterShape shape, Rng& rng) {
  nn::FilterBankF bank(shape);
  for (std::size_t i = 0; i < bank.size(); ++i)
    bank.data()[i] = static_cast<float>(rng.next_gaussian() * 0.1);
  return bank;
}

TEST(Ternarize, ProducesSignsAboveThresholdOnly) {
  Rng rng(1);
  const nn::FilterBankF bank = random_bank_f({4, 4, 3, 3}, rng);
  const quant::TernaryLayer layer = quant::ternarize_filters(bank);
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < bank.size(); ++i)
    mean_abs += std::abs(bank.data()[i]);
  mean_abs /= static_cast<double>(bank.size());
  const double delta = 0.7 * mean_abs;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const std::int8_t t = layer.weights.data()[i];
    EXPECT_TRUE(t == -1 || t == 0 || t == 1);
    if (std::abs(bank.data()[i]) > delta)
      EXPECT_EQ(t, bank.data()[i] > 0 ? 1 : -1);
    else
      EXPECT_EQ(t, 0);
  }
  EXPECT_GT(layer.density, 0.1);
  EXPECT_LT(layer.density, 0.9);
  // Gaussian(0, 0.1): alpha ≈ 0.13 ⇒ weight_exp ≈ 3.
  EXPECT_GE(layer.weight_exp, 2);
  EXPECT_LE(layer.weight_exp, 4);
}

TEST(TernaryStream, OneByteFormatRoundTripsAndHalvesTraffic) {
  Rng rng(2);
  const nn::FilterBankF bank_f = random_bank_f({8, 8, 3, 3}, rng);
  const pack::PackedFilters packed =
      pack::pack_filters(quant::ternarize_filters(bank_f).weights);
  ASSERT_TRUE(pack::is_ternary(packed));

  const pack::LaneStream dense =
      pack::build_lane_stream(packed, 0, 4, 1, 4, /*ternary=*/false);
  const pack::LaneStream ternary =
      pack::build_lane_stream(packed, 0, 4, 1, 4, /*ternary=*/true);
  // Same lists, half the entry bytes.
  const std::int64_t nnz = dense.total_bytes - ternary.total_bytes;
  EXPECT_GT(nnz, 0);
  EXPECT_EQ(ternary.total_bytes + nnz, dense.total_bytes);

  const std::vector<std::uint8_t> bytes = serialize_lane_stream(ternary);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), ternary.total_bytes);
  const pack::LaneStream parsed = pack::parse_lane_stream(
      bytes, ternary.channels, ternary.wtiles, ternary.active, true);
  for (std::size_t i = 0; i < ternary.groups.size(); ++i)
    EXPECT_EQ(parsed.groups[i].lists, ternary.groups[i].lists);
}

TEST(TernaryStream, RejectsNonTernaryWeights) {
  Rng rng(3);
  nn::FilterBankI8 bank({4, 4, 3, 3});
  bank.at(0, 0, 0, 0) = 5;  // not ±1
  const pack::PackedFilters packed = pack::pack_filters(bank);
  EXPECT_FALSE(pack::is_ternary(packed));
  EXPECT_THROW(pack::build_lane_stream(packed, 0, 4, 0, 4, true), Error);
}

TEST(TernaryAccelerator, ConvMatchesReferenceBothEngines) {
  Rng rng(4);
  nn::FeatureMapI8 input({8, 12, 12});
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-50, 50));
  const quant::TernaryLayer tl =
      quant::ternarize_filters(random_bank_f({8, 8, 3, 3}, rng));
  const std::vector<std::int32_t> bias(8, -7);
  const nn::Requant rq{.shift = 2, .relu = false};
  const nn::FeatureMapI8 expected =
      nn::conv2d_i8(input, tl.weights, bias, 1, rq);

  for (const driver::ExecMode mode :
       {driver::ExecMode::kCycle, driver::ExecMode::kThread,
        driver::ExecMode::kFast}) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.bank_words = 2048;
    core::Accelerator acc(cfg);
    sim::Dram dram(16u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = mode});
    driver::LayerRun run;
    const pack::TiledFm out = runtime.run_conv(
        pack::to_tiled(input), pack::pack_filters(tl.weights), bias, rq, run);
    EXPECT_EQ(pack::from_tiled(out), expected);
  }
}

TEST(TernaryNetwork, EndToEndThroughAcceleratorMatchesInt8Reference) {
  Rng rng(5);
  const nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 32, .num_classes = 10});
  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  nn::FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
  const quant::QuantizedModel model =
      quant::ternarize_network(net, weights, {image});
  // Every conv layer is ternary and every shift non-negative.
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    if (net.layers()[i].kind != nn::LayerKind::kConv) continue;
    EXPECT_GE(model.weights.conv_requant[i].shift, 0);
    for (std::size_t k = 0; k < model.weights.conv[i].size(); ++k) {
      const std::int8_t w = model.weights.conv[i].data()[k];
      EXPECT_TRUE(w == -1 || w == 0 || w == 1);
    }
  }

  const nn::FeatureMapI8 input =
      quant::quantize_fm(image, model.input_exp);
  const std::vector<nn::ActivationI8> ref =
      nn::forward_i8_all(net, model.weights, input);

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 4096;
  core::Accelerator acc(cfg);
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});
  const driver::NetworkRun run = runtime.run_network(net, model, input);
  ASSERT_TRUE(run.flat_output);
  EXPECT_EQ(run.logits, ref.back().flat);
}

TEST(TernaryPerf, DenserStreamReducesSpillForDeepLayers) {
  Rng rng(6);
  // A deep-layer shape with a scratch too small for the int8 stream; high
  // sparsity makes the fetch path (IFM loads + weight spill) the bottleneck,
  // where the ternary format's density pays off.
  const nn::FilterBankF bank_f = random_bank_f({64, 64, 3, 3}, rng);
  const quant::TernaryLayer tl =
      quant::ternarize_filters(bank_f, {.delta_factor = 1.5});
  // An int8 twin with the same sparsity pattern but wide values.
  nn::FilterBankI8 int8_bank = tl.weights;
  for (std::size_t i = 0; i < int8_bank.size(); ++i)
    if (int8_bank.data()[i] != 0)
      int8_bank.data()[i] = static_cast<std::int8_t>(
          int8_bank.data()[i] * rng.next_int(2, 60));

  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.weight_scratch_words = 16;
  const driver::PerfModel model(cfg);
  const driver::ConvPerf ternary_perf =
      model.conv_layer({64, 16, 16}, pack::pack_filters(tl.weights));
  const driver::ConvPerf int8_perf =
      model.conv_layer({64, 16, 16}, pack::pack_filters(int8_bank));
  // Same weight commands (same sparsity pattern), fewer cycles (less spill).
  EXPECT_EQ(ternary_perf.weight_cmds, int8_perf.weight_cmds);
  EXPECT_LT(ternary_perf.cycles, int8_perf.cycles);
}

}  // namespace
}  // namespace tsca
