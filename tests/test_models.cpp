// Area/power model invariants and study-network structure.
#include <gtest/gtest.h>

#include "driver/study.hpp"
#include "model/area.hpp"
#include "model/power.hpp"

namespace tsca {
namespace {

TEST(AreaModel, CalibrationTracksPaperUtilization) {
  const model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  const model::AreaReport report =
      model::estimate_area(core::ArchConfig::k256_opt());
  // Paper: 44 % ALM, 25 % DSP, 49 % RAM blocks for 256-opt.
  EXPECT_NEAR(report.alm_utilization(device), 0.44, 0.05);
  EXPECT_NEAR(report.dsp_utilization(device), 0.25, 0.03);
  EXPECT_NEAR(report.m20k_utilization(device), 0.49, 0.04);
}

TEST(AreaModel, MuxHeavyUnitsDominate) {
  const model::AreaReport report =
      model::estimate_area(core::ArchConfig::k256_opt());
  std::map<std::string, int> alms;
  for (const model::UnitArea& unit : report.units) alms[unit.unit] = unit.alms;
  // Fig. 6: convolution, accumulator and data-staging take most of the area.
  const int big = alms["convolution"] + alms["accumulator"] +
                  alms["data-staging/ctrl"];
  EXPECT_GT(big, report.total_alms / 2);
  EXPECT_GT(alms["data-staging/ctrl"], alms["write-to-memory"]);
  EXPECT_GT(alms["convolution"], alms["pool/pad"]);
}

TEST(AreaModel, ScalesWithLanesAndInstances) {
  const model::AreaReport a16 =
      model::estimate_area(core::ArchConfig::k16_unopt());
  const model::AreaReport a256 =
      model::estimate_area(core::ArchConfig::k256_unopt());
  const model::AreaReport a512 =
      model::estimate_area(core::ArchConfig::k512_opt());
  EXPECT_LT(a16.total_alms, a256.total_alms);
  EXPECT_LT(a256.total_alms, a512.total_alms);
  EXPECT_LT(a16.total_dsp, a256.total_dsp);
  EXPECT_EQ(a512.total_dsp, 2 * a256.total_dsp);
  // 512-opt fits the SX660 (the paper routed it, with congestion).
  const model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  EXPECT_LT(a512.alm_utilization(device), 0.9);
  EXPECT_LT(a512.m20k_utilization(device), 0.6);
}

TEST(AreaModel, OptimizedBuildCostsMoreFabric) {
  const model::AreaReport unopt =
      model::estimate_area(core::ArchConfig::k256_unopt());
  const model::AreaReport opt =
      model::estimate_area(core::ArchConfig::k256_opt());
  EXPECT_GT(opt.total_alms, unopt.total_alms);  // retiming registers etc.
  EXPECT_EQ(opt.total_dsp, unopt.total_dsp);
}

TEST(PowerModel, CalibrationTracksTableOne) {
  const model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  {
    const core::ArchConfig cfg = core::ArchConfig::k256_opt();
    const model::PowerEstimate p = model::estimate_power(
        cfg, model::estimate_area(cfg), model::Activity::peak(cfg), device);
    EXPECT_NEAR(p.fpga_w(), 2.3, 0.15);     // paper: 2300 mW
    EXPECT_NEAR(p.dynamic_w, 0.5, 0.1);     // paper: 500 mW
    EXPECT_NEAR(p.board_w, 9.5, 0.5);       // paper: 9500 mW
  }
  {
    const core::ArchConfig cfg = core::ArchConfig::k512_opt();
    const model::PowerEstimate p = model::estimate_power(
        cfg, model::estimate_area(cfg), model::Activity::peak(cfg), device);
    EXPECT_NEAR(p.fpga_w(), 3.3, 0.2);      // paper: 3300 mW
    EXPECT_NEAR(p.dynamic_w, 0.8, 0.15);    // paper: 800 mW
    EXPECT_NEAR(p.board_w, 10.8, 0.6);      // paper: 10800 mW
  }
}

TEST(PowerModel, DynamicPowerScalesWithActivity) {
  const model::FpgaDevice device = model::FpgaDevice::arria10_sx660();
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const model::AreaReport area = model::estimate_area(cfg);
  model::Activity idle;
  model::Activity busy = model::Activity::peak(cfg);
  const model::PowerEstimate p_idle =
      model::estimate_power(cfg, area, idle, device);
  const model::PowerEstimate p_busy =
      model::estimate_power(cfg, area, busy, device);
  EXPECT_LT(p_idle.dynamic_w, p_busy.dynamic_w);
  EXPECT_DOUBLE_EQ(p_idle.static_w, p_busy.static_w);

  model::Activity half = busy;
  half.mac_rate /= 2;
  const model::PowerEstimate p_half =
      model::estimate_power(cfg, area, half, device);
  EXPECT_LT(p_half.dynamic_w, p_busy.dynamic_w);
  EXPECT_GT(p_half.dynamic_w, p_idle.dynamic_w);
}

TEST(FpgaDevice, DatabaseEntries) {
  const model::FpgaDevice sx = model::FpgaDevice::arria10_sx660();
  const model::FpgaDevice gt = model::FpgaDevice::arria10_gt1150();
  EXPECT_GT(gt.alms, sx.alms);  // the paper's "nearly double the capacity"
  EXPECT_NEAR(static_cast<double>(gt.alms) / sx.alms, 1.7, 0.3);
}

// --- study networks --------------------------------------------------------

TEST(Study, Vgg16StructureAndDensities) {
  const driver::StudyNetwork unpruned =
      driver::build_study_network({.pruned = false, .channel_divisor = 8});
  const driver::StudyNetwork pruned =
      driver::build_study_network({.pruned = true, .channel_divisor = 8});
  ASSERT_EQ(unpruned.layers.size(), 13u);
  ASSERT_EQ(pruned.layers.size(), 13u);
  EXPECT_EQ(unpruned.pad_pool_ops.size(), 13u + 5u);  // one pad/conv + 5 pools
  for (std::size_t i = 0; i < 13; ++i) {
    // Quantization zeroes few weights; pruning many more.
    EXPECT_GT(unpruned.layers[i].density, 0.85) << i;
    EXPECT_LT(pruned.layers[i].density, unpruned.layers[i].density) << i;
  }
  // Padded input of conv1_1 is the 226x226 map.
  EXPECT_EQ(unpruned.layers[0].padded_in.h, 226 / 1);
}

TEST(Study, EvaluateVariantInvariants) {
  const driver::StudyNetwork net =
      driver::build_study_network({.pruned = true, .channel_divisor = 8});
  const driver::VariantResult r256 =
      driver::evaluate_variant(core::ArchConfig::k256_opt(), net);
  const driver::VariantResult r512 =
      driver::evaluate_variant(core::ArchConfig::k512_opt(), net);
  const driver::VariantResult r16 =
      driver::evaluate_variant(core::ArchConfig::k16_unopt(), net);

  EXPECT_EQ(r256.layers.size(), 13u);
  EXPECT_GT(r256.total_macs, 0);
  EXPECT_LE(r256.worst_efficiency, r256.best_efficiency);
  EXPECT_GE(r256.mean_efficiency, r256.worst_efficiency);
  EXPECT_LE(r256.mean_efficiency, r256.best_efficiency);
  // More hardware, fewer cycles; higher clock, more GOPS.
  EXPECT_LT(r512.total_cycles, r256.total_cycles);
  EXPECT_GT(r16.total_cycles, r256.total_cycles);
  EXPECT_GT(r512.best_gops, r256.best_gops);
  // Network-level GOPS includes pad/pool and is therefore lower.
  EXPECT_LT(r256.network_gops, r256.mean_gops + 1e-9);
  EXPECT_GT(r256.pad_pool_cycles, 0);
}

TEST(Study, PruningReducesCyclesNeverChangesMacCount) {
  const driver::StudyNetwork unpruned =
      driver::build_study_network({.pruned = false, .channel_divisor = 16});
  const driver::StudyNetwork pruned =
      driver::build_study_network({.pruned = true, .channel_divisor = 16});
  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  const driver::VariantResult u = driver::evaluate_variant(cfg, unpruned);
  const driver::VariantResult p = driver::evaluate_variant(cfg, pruned);
  EXPECT_EQ(u.total_macs, p.total_macs);  // dense MAC accounting identical
  EXPECT_LT(p.total_cycles, u.total_cycles);
}

TEST(Study, UniformDensityOverrideApplies) {
  const driver::StudyNetwork net = driver::build_study_network(
      {.pruned = true, .channel_divisor = 16, .uniform_density = 0.25});
  for (const driver::StudyLayer& layer : net.layers)
    EXPECT_NEAR(layer.density, 0.25, 0.05) << layer.name;
}

}  // namespace
}  // namespace tsca
