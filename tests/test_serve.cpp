// Serving subsystem: queue admission, dynamic batching, deadline handling,
// stop semantics, and bit-exactness of served outputs vs the serial runtime.
//
// Every suite here is named Serve* so tier1.sh's TSan configuration picks
// the whole file up (-R 'Pool|Program|Serve') — the server, scheduler and
// queue are exactly the kind of concurrent machinery TSan exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/program.hpp"
#include "driver/program_registry.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "nn/zoo.hpp"
#include "obs/trace.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "serve/load_generator.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "sim/dma.hpp"
#include "sim/dram.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

nn::FeatureMapI8 random_fm(nn::FmShape shape, Rng& rng) {
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));
  return fm;
}

// One tiny VGG-16 compiled once and shared by every test (compilation is the
// expensive part; the program is immutable, sharing is the whole point).
struct SharedModel {
  SharedModel() {
    Rng rng(501);
    net = nn::build_vgg16(
        {.input_extent = 32, .channel_divisor = 16, .num_classes = 10});
    nn::WeightsF weights = nn::init_random_weights(net, rng);
    quant::prune_weights(net, weights, quant::vgg16_han_profile());
    nn::FeatureMapF calib(net.input_shape());
    for (std::size_t i = 0; i < calib.size(); ++i)
      calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.4);
    model = quant::quantize_network(net, weights, {calib});
    program.emplace(driver::NetworkProgram::compile(
        net, model, core::ArchConfig::k256_opt()));
  }

  nn::Network net{nn::FmShape{}};
  quant::QuantizedModel model;
  std::optional<driver::NetworkProgram> program;
};

const SharedModel& shared_model() {
  static SharedModel* m = new SharedModel();
  return *m;
}

std::vector<std::int8_t> direct_logits(const nn::FeatureMapI8& input) {
  const SharedModel& m = shared_model();
  core::Accelerator acc(m.program->config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma,
                          {.mode = driver::ExecMode::kFast});
  return runtime.run_network(*m.program, input).logits;
}

// --- run_network_batch (driver layer) ---------------------------------

// Batched execution is bit-identical per request to serial run_network, and
// the batch's aggregate weight traffic is amortized: weight chunks DMA once
// per chunk, not once per image.  Small banks force striping + weight
// chunking (and defeat pad+conv fusion), so the convs actually take the
// run_conv_batch path where the amortization lives — on the full-size config
// this net's convs all fuse and execute per image.
TEST(ServeBatchRun, BitExactAndWeightAmortized) {
  const SharedModel& m = shared_model();
  Rng rng(502);
  constexpr int kBatch = 3;
  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < kBatch; ++i)
    inputs.push_back(random_fm(m.net.input_shape(), rng));

  core::ArchConfig striped_cfg = core::ArchConfig::k256_opt();
  striped_cfg.bank_words = 128;
  const driver::NetworkProgram striped =
      driver::NetworkProgram::compile(m.net, m.model, striped_cfg);

  auto make_runtime = [&](core::Accelerator& acc, sim::Dram& dram,
                          sim::DmaEngine& dma) {
    return driver::Runtime(acc, dram, dma,
                           {.mode = driver::ExecMode::kCycle});
  };

  std::vector<driver::NetworkRun> serial;
  std::uint64_t serial_to_fpga = 0;
  for (const nn::FeatureMapI8& input : inputs) {
    core::Accelerator acc(striped.config());
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime = make_runtime(acc, dram, dma);
    serial.push_back(runtime.run_network(striped, input));
    for (const driver::LayerRun& lr : serial.back().layers)
      serial_to_fpga += lr.dma.bytes_to_fpga;
  }

  core::Accelerator acc(striped.config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime = make_runtime(acc, dram, dma);
  const driver::BatchNetworkRun batch =
      runtime.run_network_batch(striped, inputs);

  ASSERT_EQ(batch.requests.size(), inputs.size());
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_EQ(batch.requests[static_cast<std::size_t>(i)].logits,
              serial[static_cast<std::size_t>(i)].logits)
        << "request " << i;
    EXPECT_TRUE(batch.requests[static_cast<std::size_t>(i)].flat_output);
  }
  // Aggregate layer stats cover the whole batch...
  ASSERT_EQ(batch.layers.size(), serial[0].layers.size());
  std::uint64_t batch_to_fpga = 0;
  for (const driver::LayerRun& lr : batch.layers)
    batch_to_fpga += lr.dma.bytes_to_fpga;
  // ...and move strictly fewer bytes FPGA-ward than three serial passes:
  // per-image stripes are paid three times, weight chunks only once.
  EXPECT_LT(batch_to_fpga, serial_to_fpga);
  EXPECT_GT(batch_to_fpga, serial_to_fpga / kBatch);
}

// Cooperative cancellation: a raised flag aborts run_network between steps.
TEST(ServeBatchRun, CancelFlagAbortsExecution) {
  const SharedModel& m = shared_model();
  Rng rng(503);
  const nn::FeatureMapI8 input = random_fm(m.net.input_shape(), rng);

  core::Accelerator acc(m.program->config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  std::atomic<bool> cancel{true};  // pre-raised: aborts at the first step
  driver::Runtime runtime(
      acc, dram, dma,
      {.mode = driver::ExecMode::kFast, .cancel = &cancel});
  EXPECT_THROW(runtime.run_network(*m.program, input),
               driver::RequestCancelled);
}

// --- RequestQueue ------------------------------------------------------

serve::Pending make_pending(std::uint64_t id, serve::TimePoint deadline,
                            int priority = serve::kPriorityHigh,
                            std::uint64_t client = 0) {
  serve::Pending p;
  p.request.id = id;
  p.request.deadline = deadline;
  p.request.submitted = serve::Clock::now();
  p.request.priority = priority;
  p.request.client_id = client;
  return p;
}

TEST(ServeQueue, EdfPopsEarliestDeadlineFirstAndNoDeadlineLast) {
  serve::RequestQueue q(8);
  const serve::TimePoint now = serve::Clock::now();
  ASSERT_EQ(q.push(make_pending(1, now + std::chrono::milliseconds(30))),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(2, serve::kNoDeadline)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(3, now + std::chrono::milliseconds(10))),
            serve::Admit::kAdmitted);

  std::vector<serve::Pending> batch = q.pop_wait(3, 0, /*edf=*/true);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request.id, 3u);
  EXPECT_EQ(batch[1].request.id, 1u);
  EXPECT_EQ(batch[2].request.id, 2u);
}

TEST(ServeQueue, FifoPreservesSubmissionOrder) {
  serve::RequestQueue q(8);
  const serve::TimePoint now = serve::Clock::now();
  ASSERT_EQ(q.push(make_pending(1, now + std::chrono::milliseconds(30))),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(2, now + std::chrono::milliseconds(10))),
            serve::Admit::kAdmitted);
  std::vector<serve::Pending> batch = q.pop_wait(2, 0, /*edf=*/false);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 1u);
  EXPECT_EQ(batch[1].request.id, 2u);
}

TEST(ServeQueue, RejectsWhenFullAndWhenClosed) {
  serve::RequestQueue q(2);
  EXPECT_EQ(q.push(make_pending(1, serve::kNoDeadline)),
            serve::Admit::kAdmitted);
  EXPECT_EQ(q.push(make_pending(2, serve::kNoDeadline)),
            serve::Admit::kAdmitted);
  EXPECT_EQ(q.push(make_pending(3, serve::kNoDeadline)),
            serve::Admit::kQueueFull);
  q.close();
  EXPECT_EQ(q.push(make_pending(4, serve::kNoDeadline)),
            serve::Admit::kShutdown);
  // Closed: pop_wait returns empty without blocking; the backlog drains.
  EXPECT_TRUE(q.pop_wait(4, 1000, true).empty());
  EXPECT_EQ(q.drain().size(), 2u);
}

TEST(ServeQueue, PopWaitFlushesPartialBatchAfterDelay) {
  serve::RequestQueue q(8);
  ASSERT_EQ(q.push(make_pending(1, serve::kNoDeadline)),
            serve::Admit::kAdmitted);
  // max_batch of 4 never arrives; the 2ms formation window must flush the
  // partial batch instead of blocking forever.
  std::vector<serve::Pending> batch = q.pop_wait(4, 2000, true);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, 1u);
}

TEST(ServeQueue, StrictPriorityAcrossClassesEdfWithinClass) {
  serve::RequestQueue q(8);
  const serve::TimePoint now = serve::Clock::now();
  ASSERT_EQ(q.push(make_pending(1, now + std::chrono::milliseconds(30),
                                /*priority=*/1)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(2, now + std::chrono::milliseconds(10),
                                /*priority=*/1)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(3, serve::kNoDeadline, /*priority=*/0)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(4, now + std::chrono::milliseconds(50),
                                /*priority=*/0)),
            serve::Admit::kAdmitted);

  // Class 0 drains completely (EDF inside it, no-deadline last) before any
  // class-1 entry is touched, even though class 1 holds the two earliest
  // deadlines overall.
  std::vector<serve::Pending> batch = q.pop_wait(4, 0, /*edf=*/true);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].request.id, 4u);
  EXPECT_EQ(batch[1].request.id, 3u);
  EXPECT_EQ(batch[2].request.id, 2u);
  EXPECT_EQ(batch[3].request.id, 1u);
}

TEST(ServeQueue, FairShareEvictsOverShareClientForUnderShareClient) {
  serve::RequestQueue q(4);
  const serve::TimePoint now = serve::Clock::now();
  // Client 1 alone may use the whole queue (work-conserving).
  ASSERT_EQ(q.push(make_pending(1, now + std::chrono::milliseconds(10), 0, 1)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(2, serve::kNoDeadline, 0, 1)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(3, now + std::chrono::milliseconds(20), 0, 1)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(4, now + std::chrono::milliseconds(30), 0, 1)),
            serve::Admit::kAdmitted);

  // Client 2 arrives under its share (4/2 = 2): client 1's most expendable
  // entry — latest deadline, and kNoDeadline sorts after every real one —
  // is evicted to admit it.
  std::optional<serve::Pending> evicted;
  EXPECT_EQ(q.push(make_pending(5, now + std::chrono::milliseconds(5), 0, 2),
                   &evicted),
            serve::Admit::kAdmitted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->request.id, 2u);
  EXPECT_EQ(q.size(), 4u);

  // Still under share: evicts again (latest real deadline now: id 4).
  evicted.reset();
  EXPECT_EQ(q.push(make_pending(6, now + std::chrono::milliseconds(5), 0, 2),
                   &evicted),
            serve::Admit::kAdmitted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->request.id, 4u);

  // Both clients at their share: the full queue rejects either of them.
  evicted.reset();
  EXPECT_EQ(q.push(make_pending(7, now + std::chrono::milliseconds(1), 0, 2),
                   &evicted),
            serve::Admit::kQueueFull);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(q.push(make_pending(8, now + std::chrono::milliseconds(1), 0, 1),
                   &evicted),
            serve::Admit::kQueueFull);
  EXPECT_FALSE(evicted.has_value());

  // A third client shrinks the share to max(1, 4/3) = 1; both incumbents are
  // over it, and the globally most expendable entry (latest deadline: id 3)
  // goes.
  EXPECT_EQ(q.push(make_pending(9, now + std::chrono::milliseconds(1), 0, 3),
                   &evicted),
            serve::Admit::kAdmitted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->request.id, 3u);
}

TEST(ServeQueue, FairShareVictimPrefersLowestClass) {
  serve::RequestQueue q(2);
  const serve::TimePoint now = serve::Clock::now();
  // Client 1 holds a high-class no-deadline entry and a low-class one with a
  // tight deadline.  Class dominates the victim choice: the low-class entry
  // goes even though the high-class one has the later (infinite) deadline.
  ASSERT_EQ(q.push(make_pending(1, serve::kNoDeadline, /*priority=*/0, 1)),
            serve::Admit::kAdmitted);
  ASSERT_EQ(q.push(make_pending(2, now + std::chrono::milliseconds(1),
                                /*priority=*/2, 1)),
            serve::Admit::kAdmitted);
  std::optional<serve::Pending> evicted;
  EXPECT_EQ(q.push(make_pending(3, serve::kNoDeadline, 0, 2), &evicted),
            serve::Admit::kAdmitted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->request.id, 2u);
}

// Regression test for the stale batch-formation anchor: with the old code,
// pop_wait computed flush_at from the queue front once per outer iteration;
// a concurrent popper could then steal that entry, and a *later* arrival
// inherited the expired window instead of opening its own.
//
// Timeline: A is pushed at t0 and a popper (window 400ms, batch 2) anchors
// on it; a second popper steals A at ~t0+50ms; B arrives at ~t0+100ms.  The
// fixed code re-anchors on B and holds it until ~t0+500ms; the stale-anchor
// code flushed B at t0+400ms, only ~300ms after its arrival.  The 350ms
// assertion threshold sits between the two, and the fixed behaviour can
// only ever wait *longer* (wait_until never returns early), so the test is
// timing-robust in the passing direction.
TEST(ServeQueue, PopWaitReanchorsFlushWindowAfterConcurrentSteal) {
  serve::RequestQueue q(8);
  constexpr std::int64_t kWindowUs = 400000;
  ASSERT_EQ(q.push(make_pending(1, serve::kNoDeadline)),
            serve::Admit::kAdmitted);

  std::vector<serve::Pending> got;
  serve::TimePoint popped_at{};
  std::thread popper([&] {
    got = q.pop_wait(2, kWindowUs, /*edf=*/true);
    popped_at = serve::Clock::now();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Steal A out from under the waiting popper (zero-delay pop).
  std::vector<serve::Pending> stolen = q.pop_wait(1, 0, /*edf=*/true);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].request.id, 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const serve::TimePoint b_pushed = serve::Clock::now();
  ASSERT_EQ(q.push(make_pending(2, serve::kNoDeadline)),
            serve::Admit::kAdmitted);
  popper.join();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].request.id, 2u);
  // B must get its own full formation window, not the tail of A's.
  EXPECT_GE(serve::us_between(b_pushed, popped_at), 350000)
      << "flush window was anchored on a stolen entry";
}

// --- Server ------------------------------------------------------------

TEST(ServeServer, ExecutesBitExactAgainstSerialRuntime) {
  const SharedModel& m = shared_model();
  Rng rng(504);
  constexpr int kRequests = 4;
  std::vector<nn::FeatureMapI8> inputs;
  for (int i = 0; i < kRequests; ++i)
    inputs.push_back(random_fm(m.net.input_shape(), rng));

  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(*m.program, opts);
  std::vector<std::future<serve::Response>> futures;
  for (const nn::FeatureMapI8& input : inputs)
    futures.push_back(server.submit(input));

  for (int i = 0; i < kRequests; ++i) {
    serve::Response r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.status, serve::Status::kOk);
    EXPECT_TRUE(r.executed);
    EXPECT_GE(r.batch_size, 1);
    EXPECT_EQ(r.logits, direct_logits(inputs[static_cast<std::size_t>(i)]))
        << "request " << i;
    EXPECT_GE(r.latency.exec_us, 0);
    EXPECT_EQ(r.latency.total_us(),
              r.latency.queued_us + r.latency.batch_us + r.latency.exec_us);
  }
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.completed").value(), kRequests);
  EXPECT_EQ(server.metrics().counter("serve.admitted").value(), kRequests);
}

TEST(ServeServer, CoalescesBurstsIntoDynamicBatches) {
  const SharedModel& m = shared_model();
  Rng rng(505);
  constexpr int kRequests = 8;

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 4;
  opts.batch.max_queue_delay_us = 20000;  // long window: the burst coalesces
  serve::Server server(*m.program, opts);

  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(random_fm(m.net.input_shape(), rng)));

  int max_batch_seen = 0;
  for (auto& f : futures) {
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kOk);
    max_batch_seen = std::max(max_batch_seen, r.batch_size);
  }
  EXPECT_GT(max_batch_seen, 1) << "a burst against one worker must coalesce";
  EXPECT_LE(max_batch_seen, opts.batch.max_batch);
  EXPECT_LT(server.metrics().counter("serve.batches").value(), kRequests);
  EXPECT_GT(server.metrics().histogram("serve.batch_size").max(), 1);
}

TEST(ServeServer, QueueFullRejectsWithReasonUnderOverload) {
  const SharedModel& m = shared_model();
  Rng rng(506);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.batch.max_batch = 4;
  // The formation window out-waits the submission burst below, so the queue
  // is deterministically still full when the extra submissions arrive.
  opts.batch.max_queue_delay_us = 200000;
  serve::Server server(*m.program, opts);

  constexpr int kRequests = 8;
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(random_fm(m.net.input_shape(), rng)));

  int ok = 0, rejected = 0;
  for (auto& f : futures) {
    const serve::Response r = f.get();
    if (r.status == serve::Status::kOk) ++ok;
    if (r.status == serve::Status::kRejectedQueueFull) {
      ++rejected;
      EXPECT_FALSE(r.executed);
    }
  }
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GE(rejected, kRequests - static_cast<int>(opts.queue_capacity) - 1);
  EXPECT_EQ(server.metrics().counter("serve.rejected_queue_full").value(),
            rejected);
  EXPECT_GT(server.metrics().counter("serve.rejected_queue_full").value(), 0);
}

TEST(ServeServer, ExpiredRequestsAreShedBeforeExecution) {
  const SharedModel& m = shared_model();
  Rng rng(507);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow on purpose: requests pile up
  opts.batch.max_batch = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);

  // Request 0 occupies the worker for a full cycle-accurate network pass
  // (tens of ms); the 1ms-deadline requests submitted *while it executes*
  // expire long before the worker frees up and must be shed, not executed.
  // Poll the batch counter so the doomed requests are provably queued behind
  // an in-flight execution — submitting them against an idle worker would
  // let EDF hand one over while still live.
  auto head = server.submit(random_fm(m.net.input_shape(), rng));
  while (server.metrics().counter("serve.batches").value() < 1)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  std::vector<std::future<serve::Response>> doomed;
  for (int i = 0; i < 4; ++i)
    doomed.push_back(
        server.submit(random_fm(m.net.input_shape(), rng), 1000));

  EXPECT_EQ(head.get().status, serve::Status::kOk);
  for (auto& f : doomed) {
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kDeadlineMissed);
    EXPECT_FALSE(r.executed) << "expired request must be shed, not run";
    EXPECT_EQ(r.latency.exec_us, 0);
  }
  EXPECT_EQ(server.metrics().counter("serve.deadline_missed").value(), 4);
  EXPECT_EQ(server.metrics().counter("serve.expired_shed").value(), 4);
  EXPECT_GT(server.metrics().counter("serve.deadline_missed").value(), 0);
}

// A deadline that is already expired at submit time exercises the
// shed-races-execution-start path with max_queue_delay 0: the scheduler and
// the worker's last-chance check both see an expired request immediately.
TEST(ServeServer, AlreadyExpiredDeadlineNeverExecutes) {
  const SharedModel& m = shared_model();
  Rng rng(508);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);

  const serve::Response r =
      server.submit(random_fm(m.net.input_shape(), rng), 0).get();
  EXPECT_EQ(r.status, serve::Status::kDeadlineMissed);
  EXPECT_FALSE(r.executed);
}

TEST(ServeServer, StopCompletesEveryInFlightAndQueuedRequest) {
  const SharedModel& m = shared_model();
  Rng rng(509);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow: stop lands mid-execution
  opts.batch.max_batch = 2;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);

  constexpr int kRequests = 6;
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(random_fm(m.net.input_shape(), rng)));
  // Give the worker a moment to take a batch in-flight, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.stop();

  int ok = 0, cancelled = 0;
  for (auto& f : futures) {
    const serve::Response r = f.get();  // must complete — no deadlock
    if (r.status == serve::Status::kOk) ++ok;
    if (r.status == serve::Status::kCancelled) ++cancelled;
  }
  EXPECT_EQ(ok + cancelled, kRequests);
  EXPECT_GT(cancelled, 0) << "stop() must cancel the backlog";

  // After stop: rejected as shutdown, promptly.
  const serve::Response after =
      server.submit(random_fm(m.net.input_shape(), rng)).get();
  EXPECT_EQ(after.status, serve::Status::kRejectedShutdown);
  server.stop();  // idempotent
}

TEST(ServeServer, RecordsServeSpansForEveryRequest) {
  const SharedModel& m = shared_model();
  Rng rng(510);

  obs::Recorder recorder;
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.trace = &recorder;
  serve::Server server(*m.program, opts);
  constexpr int kRequests = 3;
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(random_fm(m.net.input_shape(), rng)));
  for (auto& f : futures) EXPECT_EQ(f.get().status, serve::Status::kOk);
  server.stop();

  int request_spans = 0;
  const std::vector<std::string> tracks = recorder.track_names();
  for (const obs::TraceEvent& e : recorder.events())
    if (tracks[static_cast<std::size_t>(e.track)] == "serve/requests")
      ++request_spans;
  EXPECT_EQ(request_spans, kRequests);
  // Worker-scoped runtime tracks (simulated-cycle domain) exist alongside.
  bool has_worker_track = false;
  for (const std::string& name : tracks)
    if (name.rfind("serve/worker0/", 0) == 0) has_worker_track = true;
  EXPECT_TRUE(has_worker_track);
}

// Regression test for the lost-clock bug: execute_batch persisted the
// worker's simulated-cycle clock on the success and cancellation paths but
// not when run_network_batch threw any other exception, so the next batch
// on that worker rewound the clock and its layer spans overlapped the
// failed batch's.  A per-request cycle budget gives a deterministic
// mid-run failure (the batch aborts after at least one layer has advanced
// the clock); the spans on the worker's layer track must stay disjoint and
// monotonic across the failure.
TEST(ServeServer, WorkerClockPersistsWhenBatchThrowsMidRun) {
  const SharedModel& m = shared_model();
  Rng rng(511);
  obs::Recorder recorder;
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.trace = &recorder;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);

  EXPECT_EQ(server.submit(random_fm(m.net.input_shape(), rng)).get().status,
            serve::Status::kOk);
  serve::SubmitOptions budgeted;
  budgeted.cycle_budget = 1;  // exceeded after the first layer's cycles
  std::future<serve::Response> doomed =
      server.submit(random_fm(m.net.input_shape(), rng), budgeted);
  EXPECT_THROW(doomed.get(), driver::BudgetExceeded);
  EXPECT_EQ(server.submit(random_fm(m.net.input_shape(), rng)).get().status,
            serve::Status::kOk);
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.exec_errors").value(), 1);

  const std::vector<std::string> tracks = recorder.track_names();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;  // [begin, end)
  for (const obs::TraceEvent& e : recorder.events())
    if (tracks[static_cast<std::size_t>(e.track)] == "serve/worker0/layers")
      spans.emplace_back(e.begin, e.begin + e.duration);
  // Three batches ran (the middle one partially); the single worker records
  // its spans in execution order, and they must never rewind or overlap.
  ASSERT_GT(spans.size(), 2u);
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].first, spans[i - 1].second)
        << "layer span " << i << " overlaps its predecessor: the failed "
        << "batch's clock was not persisted";
}

// Regression test for batch budget poisoning: execute_batch applied the
// strictest member's cycle budget to the whole run, and a BudgetExceeded
// failed every co-batched request — one client submitting cycle_budget=1
// requests poisoned its neighbors (other clients, other SLO classes) in
// every batch it landed in.  Only the budget-setting request may fail; the
// survivors re-run and complete with correct logits.
TEST(ServeServer, BudgetAbortDoesNotPoisonCoBatchedNeighbors) {
  const SharedModel& m = shared_model();
  Rng rng(515);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 4;
  opts.batch.max_queue_delay_us = 50000;  // the burst coalesces into a batch
  serve::Server server(*m.program, opts);

  const nn::FeatureMapI8 a = random_fm(m.net.input_shape(), rng);
  const nn::FeatureMapI8 b = random_fm(m.net.input_shape(), rng);
  serve::SubmitOptions budgeted;
  budgeted.cycle_budget = 1;  // exceeded after the first layer's cycles
  std::future<serve::Response> victim_a = server.submit(a);
  std::future<serve::Response> doomed =
      server.submit(random_fm(m.net.input_shape(), rng), budgeted);
  std::future<serve::Response> victim_b = server.submit(b);

  EXPECT_THROW(doomed.get(), driver::BudgetExceeded);
  const serve::Response ra = victim_a.get();
  EXPECT_EQ(ra.status, serve::Status::kOk);
  EXPECT_EQ(ra.logits, direct_logits(a));
  // All three coalesced; the survivors re-ran as a batch of two.
  EXPECT_EQ(ra.batch_size, 2);
  const serve::Response rb = victim_b.get();
  EXPECT_EQ(rb.status, serve::Status::kOk);
  EXPECT_EQ(rb.logits, direct_logits(b));
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.budget_exceeded").value(), 1);
  EXPECT_EQ(server.metrics().counter("serve.completed").value(), 2);
}

// A batch that fails validation delivers the exception to every submitter
// exactly once — futures rethrow the original error, callbacks get a
// kError response with the reason.
TEST(ServeServer, ExecutionErrorReachesEverySubmitterExactlyOnce) {
  const SharedModel& m = shared_model();
  Rng rng(512);
  nn::FmShape bad = m.net.input_shape();
  bad.c += 1;  // shape validation rejects the whole batch up front

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 4;
  opts.batch.max_queue_delay_us = 50000;  // the burst coalesces
  serve::Server server(*m.program, opts);

  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(server.submit(random_fm(bad, rng)));
  for (auto& f : futures) {
    EXPECT_THROW(f.get(), tsca::Error);
    // Exactly once: the future is consumed; a second get() is invalid by
    // std::future contract, and the promise was never set twice (that
    // would have thrown promise_already_satisfied inside the server).
    EXPECT_FALSE(f.valid());
  }

  // Callback path: the wire cannot carry exceptions, so the same failure
  // arrives as a kError response with the validation message.
  std::promise<serve::Response> done;
  server.submit_with(random_fm(bad, rng), {},
                     [&done](serve::Response&& r) {
                       done.set_value(std::move(r));
                     });
  const serve::Response r = done.get_future().get();
  EXPECT_EQ(r.status, serve::Status::kError);
  EXPECT_FALSE(r.executed);
  EXPECT_FALSE(r.error.empty());
  server.stop();
  EXPECT_GE(server.metrics().counter("serve.exec_errors").value(), 1);
}

// kNoDeadline requests must never be shed or marked late, even under a
// feasibility horizon that sheds every finite deadline on sight.
TEST(ServeServer, NoDeadlineRequestsAreNeverShed) {
  const SharedModel& m = shared_model();
  Rng rng(513);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_queue_delay_us = 0;
  opts.batch.cancel_expired = true;
  opts.batch.min_slack_us = 3600LL * 1000 * 1000;  // 1h horizon
  serve::Server server(*m.program, opts);

  // Sanity: a generous finite deadline is still inside the 1h horizon, so
  // the feasibility shed fires for it...
  const serve::Response shed =
      server.submit(random_fm(m.net.input_shape(), rng), 1000000).get();
  EXPECT_EQ(shed.status, serve::Status::kDeadlineMissed);
  EXPECT_FALSE(shed.executed);

  // ...but deadline-less requests sail through and complete kOk.
  for (int i = 0; i < 3; ++i) {
    const serve::Response r =
        server.submit(random_fm(m.net.input_shape(), rng)).get();
    EXPECT_EQ(r.status, serve::Status::kOk);
    EXPECT_TRUE(r.executed);
  }
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.expired_shed").value(), 1);
}

// Client-initiated cancellation: a still-queued request completes as
// kCancelled without executing; cancelling a finished request is a no-op.
TEST(ServeServer, CancelRemovesQueuedRequest) {
  const SharedModel& m = shared_model();
  Rng rng(514);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow head pins the worker
  opts.batch.max_batch = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);

  std::future<serve::Response> head =
      server.submit(random_fm(m.net.input_shape(), rng));
  while (server.metrics().counter("serve.batches").value() < 1)
    std::this_thread::sleep_for(std::chrono::microseconds(100));

  std::promise<serve::Response> done;
  const std::uint64_t id = server.submit_with(
      random_fm(m.net.input_shape(), rng), {},
      [&done](serve::Response&& r) { done.set_value(std::move(r)); });
  EXPECT_TRUE(server.cancel(id)) << "request was queued behind the head";
  const serve::Response r = done.get_future().get();
  EXPECT_EQ(r.status, serve::Status::kCancelled);
  EXPECT_FALSE(r.executed);

  EXPECT_EQ(head.get().status, serve::Status::kOk);
  EXPECT_FALSE(server.cancel(id)) << "already completed: mark path only";
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.cancelled_by_client").value(), 1);
}

// Fair-share admission end to end: a flooding client cannot lock a second
// client out of a full queue — the newcomer evicts the flooder's most
// expendable entry, which completes as kRejectedQuota.
TEST(ServeServer, FairShareAdmitsSecondClientUnderFlood) {
  const SharedModel& m = shared_model();
  Rng rng(515);
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.mode = driver::ExecMode::kCycle;  // slow head pins the worker
  opts.queue_capacity = 4;
  opts.batch.max_batch = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(*m.program, opts);

  serve::SubmitOptions flooder;
  flooder.client_id = 1;
  serve::SubmitOptions newcomer;
  newcomer.client_id = 2;

  std::future<serve::Response> head =
      server.submit(random_fm(m.net.input_shape(), rng), flooder);
  while (server.metrics().counter("serve.batches").value() < 1)
    std::this_thread::sleep_for(std::chrono::microseconds(100));

  // The flooder fills the whole queue (work-conserving while uncontended).
  std::vector<std::future<serve::Response>> flood;
  for (int i = 0; i < 4; ++i)
    flood.push_back(server.submit(random_fm(m.net.input_shape(), rng),
                                  flooder));
  // The newcomer (share 4/2 = 2) evicts two flood entries, then hits its
  // own share and bounces off kQueueFull like anyone else.
  std::future<serve::Response> n1 =
      server.submit(random_fm(m.net.input_shape(), rng), newcomer);
  std::future<serve::Response> n2 =
      server.submit(random_fm(m.net.input_shape(), rng), newcomer);
  const serve::Response n3 =
      server.submit(random_fm(m.net.input_shape(), rng), newcomer).get();
  EXPECT_EQ(n3.status, serve::Status::kRejectedQueueFull);

  int quota_rejected = 0;
  for (auto& f : flood) {
    const serve::Response r = f.get();
    if (r.status == serve::Status::kRejectedQuota) {
      ++quota_rejected;
      EXPECT_FALSE(r.executed);
    } else {
      EXPECT_EQ(r.status, serve::Status::kOk);
    }
  }
  EXPECT_EQ(quota_rejected, 2);
  EXPECT_EQ(head.get().status, serve::Status::kOk);
  EXPECT_EQ(n1.get().status, serve::Status::kOk);
  EXPECT_EQ(n2.get().status, serve::Status::kOk);
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.rejected_quota").value(), 2);
}

// --- Load generator ----------------------------------------------------

// --- Registry-mode serving (multi-model routing) -----------------------

// Reference logits for a registry model via a private simulator instance.
std::vector<std::int8_t> registry_logits(driver::ProgramRegistry& registry,
                                         const std::string& id,
                                         const nn::FeatureMapI8& input) {
  const driver::ProgramHandle h = registry.acquire(id);
  core::Accelerator acc(registry.config());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  return runtime.run_network(h.program(), input).logits;
}

// Two zoo models with different input shapes behind one server: the model
// id routes each request to its own compiled program, outputs stay
// bit-exact per model, and per-model metrics attribute the traffic.
TEST(ServeRegistry, RoutesRequestsByModelIdBitExact) {
  const zoo::ZooModel mlp = zoo::make_ternary_mlp(13);
  const zoo::ZooModel mobile = zoo::make_mobile_depthwise(11);
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("mlp", mlp.net, mlp.model);
  registry.add_model("mobile", mobile.net, mobile.model);

  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(registry, "mlp", opts);
  EXPECT_EQ(server.default_model(), "mlp");

  Rng rng(520);
  constexpr int kPerModel = 3;
  std::vector<nn::FeatureMapI8> mlp_in, mobile_in;
  std::vector<std::future<serve::Response>> mlp_f, mobile_f;
  for (int i = 0; i < kPerModel; ++i) {
    serve::SubmitOptions to_mlp;
    to_mlp.model_id = "mlp";
    mlp_in.push_back(random_fm(mlp.net.input_shape(), rng));
    mlp_f.push_back(server.submit(mlp_in.back(), to_mlp));
    serve::SubmitOptions to_mobile;
    to_mobile.model_id = "mobile";
    mobile_in.push_back(random_fm(mobile.net.input_shape(), rng));
    mobile_f.push_back(server.submit(mobile_in.back(), to_mobile));
  }
  for (int i = 0; i < kPerModel; ++i) {
    const serve::Response a = mlp_f[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(a.status, serve::Status::kOk);
    EXPECT_EQ(a.logits, registry_logits(registry, "mlp",
                                        mlp_in[static_cast<std::size_t>(i)]))
        << "mlp request " << i;
    const serve::Response b = mobile_f[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(b.status, serve::Status::kOk);
    EXPECT_EQ(b.logits,
              registry_logits(registry, "mobile",
                              mobile_in[static_cast<std::size_t>(i)]))
        << "mobile request " << i;
  }
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.model.mlp.completed").value(),
            kPerModel);
  EXPECT_EQ(server.metrics().counter("serve.model.mobile.completed").value(),
            kPerModel);
  EXPECT_EQ(server.metrics()
                .histogram("serve.model.mobile.latency_us")
                .snapshot()
                .count,
            kPerModel);
  EXPECT_EQ(server.metrics().counter("serve.completed").value(),
            2 * kPerModel);
}

// A batch never mixes models: with one worker and a generous coalescing
// window, a burst that alternates models still executes in single-model
// batches (every response's batch peers share its program).
TEST(ServeRegistry, BatchesNeverMixModels) {
  const zoo::ZooModel a = zoo::make_ternary_mlp(13);
  const zoo::ZooModel b = zoo::make_ternary_mlp(17);  // same shape, diff id
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("a", a.net, a.model);
  registry.add_model("b", b.net, b.model);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 8;
  opts.batch.max_queue_delay_us = 20000;
  serve::Server server(registry, "a", opts);

  Rng rng(521);
  constexpr int kPerModel = 4;
  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < kPerModel; ++i)
    for (const char* id : {"a", "b"}) {
      serve::SubmitOptions so;
      so.model_id = id;
      futures.push_back(server.submit(random_fm(a.net.input_shape(), rng), so));
    }
  for (auto& f : futures) {
    const serve::Response r = f.get();
    EXPECT_EQ(r.status, serve::Status::kOk);
    EXPECT_LE(r.batch_size, kPerModel)
        << "a batch larger than one model's traffic must have mixed models";
  }
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.model.a.completed").value(),
            kPerModel);
  EXPECT_EQ(server.metrics().counter("serve.model.b.completed").value(),
            kPerModel);
}

// Unknown ids are a typed rejection in both modes: registry mode rejects
// unregistered ids, and a legacy single-program server rejects any
// explicit id at all (it has no registry to resolve one against).
TEST(ServeRegistry, UnknownModelIsTypedRejection) {
  const zoo::ZooModel mlp = zoo::make_ternary_mlp(13);
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("mlp", mlp.net, mlp.model);
  serve::Server server(registry, "mlp", {});

  Rng rng(522);
  serve::SubmitOptions unknown;
  unknown.model_id = "not_a_model";
  const serve::Response r =
      server.submit(random_fm(mlp.net.input_shape(), rng), unknown).get();
  EXPECT_EQ(r.status, serve::Status::kRejectedUnknownModel);
  EXPECT_FALSE(r.executed);
  EXPECT_EQ(
      server.metrics().counter("serve.rejected_unknown_model").value(), 1);

  // The server still serves known traffic after the rejection.
  const nn::FeatureMapI8 good = random_fm(mlp.net.input_shape(), rng);
  const serve::Response ok = server.submit(good).get();
  EXPECT_EQ(ok.status, serve::Status::kOk);
  EXPECT_EQ(ok.logits, registry_logits(registry, "mlp", good));
  server.stop();

  // Legacy mode: one program, no registry — any explicit id is unknown.
  const SharedModel& m = shared_model();
  serve::Server legacy(*m.program, {});
  serve::SubmitOptions named;
  named.model_id = "vgg";
  const serve::Response lr =
      legacy.submit(random_fm(m.net.input_shape(), rng), named).get();
  EXPECT_EQ(lr.status, serve::Status::kRejectedUnknownModel);
  EXPECT_EQ(
      legacy.metrics().counter("serve.rejected_unknown_model").value(), 1);
}

// An empty model id resolves to the server default, and the default's
// per-model metrics attribute that traffic.
TEST(ServeRegistry, EmptyModelIdResolvesToDefault) {
  const zoo::ZooModel mlp = zoo::make_ternary_mlp(13);
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("mlp", mlp.net, mlp.model);
  serve::Server server(registry, "mlp", {});

  Rng rng(523);
  const nn::FeatureMapI8 input = random_fm(mlp.net.input_shape(), rng);
  const serve::Response r = server.submit(input).get();
  EXPECT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.logits, registry_logits(registry, "mlp", input));
  server.stop();
  EXPECT_EQ(server.metrics().counter("serve.model.mlp.completed").value(), 1);
}

// Alternating models through one worker forces the shared accelerator
// context to restage between programs; the restage counter proves the
// worker actually swapped weight images rather than serving stale ones.
TEST(ServeRegistry, MixedTrafficRestagesContexts) {
  const zoo::ZooModel mlp = zoo::make_ternary_mlp(13);
  const zoo::ZooModel mobile = zoo::make_mobile_depthwise(11);
  driver::ProgramRegistry registry(core::ArchConfig::k256_opt());
  registry.add_model("mlp", mlp.net, mlp.model);
  registry.add_model("mobile", mobile.net, mobile.model);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 1;
  opts.batch.max_queue_delay_us = 0;
  serve::Server server(registry, "mlp", opts);

  Rng rng(524);
  for (int round = 0; round < 2; ++round) {
    serve::SubmitOptions to_mlp;
    to_mlp.model_id = "mlp";
    EXPECT_EQ(server.submit(random_fm(mlp.net.input_shape(), rng), to_mlp)
                  .get()
                  .status,
              serve::Status::kOk);
    serve::SubmitOptions to_mobile;
    to_mobile.model_id = "mobile";
    EXPECT_EQ(server.submit(random_fm(mobile.net.input_shape(), rng), to_mobile)
                  .get()
                  .status,
              serve::Status::kOk);
  }
  server.stop();
  EXPECT_GE(server.metrics().counter("serve.model_restage").value(), 2)
      << "alternating models on one worker must restage its context";
}

TEST(ServeLoadGen, PoissonScheduleIsDeterministicAndRateAccurate) {
  const std::vector<std::int64_t> a = serve::poisson_arrivals_us(42, 500, 200);
  const std::vector<std::int64_t> b = serve::poisson_arrivals_us(42, 500, 200);
  EXPECT_EQ(a, b) << "same seed ⇒ same schedule";
  const std::vector<std::int64_t> c = serve::poisson_arrivals_us(43, 500, 200);
  EXPECT_NE(a, c) << "different seed ⇒ different schedule";
  // Mean inter-arrival of a 200 rps process is 5000µs; 500 samples land
  // within a generous ±30%.
  const double mean_gap =
      static_cast<double>(a.back()) / static_cast<double>(a.size());
  EXPECT_GT(mean_gap, 3500.0);
  EXPECT_LT(mean_gap, 6500.0);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
}

TEST(ServeLoadGen, ClosedLoopReportAccountsEveryRequest) {
  const SharedModel& m = shared_model();
  serve::ServerOptions opts;
  opts.workers = 2;
  serve::Server server(*m.program, opts);

  serve::LoadOptions load;
  load.requests = 12;
  load.concurrency = 3;
  load.rate_rps = 0.0;  // closed loop
  load.seed = 7;
  const serve::LoadReport report = serve::run_load(server, load);
  server.stop();

  EXPECT_EQ(report.submitted, 12);
  EXPECT_EQ(report.ok, 12);
  EXPECT_EQ(report.rejected + report.deadline_missed + report.cancelled, 0);
  EXPECT_EQ(report.latency_us.count, 12);
  EXPECT_GT(report.goodput_rps, 0.0);
  EXPECT_GE(report.latency_us.p99, report.latency_us.p50);
}

}  // namespace
}  // namespace tsca
