// Tests for src/tune/: the design-space autotuner (search determinism,
// Pareto algebra, fit pruning, observability) and the heterogeneous-fleet
// planner/router (budget discipline, class coverage, slack routing,
// shedding semantics cross-checked against the serve scheduler).

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>

#include "obs/metrics.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/request_queue.hpp"
#include "tune/autotuner.hpp"
#include "tune/evaluate.hpp"
#include "tune/fleet.hpp"
#include "tune/search_space.hpp"
#include "util/rng.hpp"

namespace {

using namespace tsca;

const driver::StudyNetwork& tiny_network() {
  static const driver::StudyNetwork net = driver::build_study_network(
      {.pruned = true, .input_extent = 32, .channel_divisor = 8});
  return net;
}

tune::TuneOptions tiny_options() {
  tune::TuneOptions opts;
  opts.space = tune::SearchSpace::quick();
  opts.seed = 2017;
  opts.refine_rounds = 1;
  opts.mutations_per_point = 4;
  return opts;
}

// A synthetic design point for planner/router algebra tests; service time
// for a class is macs / (gops x 1e3) us.
tune::CandidateEval synthetic(const char* name, double gops, int alms,
                              double watts) {
  tune::CandidateEval e;
  e.config.name = name;
  e.gops = gops;
  e.gops_per_w = gops / watts;
  e.area_alms = alms;
  e.power.static_w = watts;
  e.power.dynamic_w = 0.0;
  e.fits = true;
  return e;
}

// --- search ------------------------------------------------------------

TEST(TuneSearch, SameSeedSameBytesAcrossWorkerCounts) {
  tune::TuneOptions a = tiny_options();
  a.workers = 1;
  tune::TuneOptions b = tiny_options();
  b.workers = 4;  // parallel evaluation must not change the result
  const tune::TuneResult ra = tune::Autotuner(tiny_network(), a).run();
  const tune::TuneResult rb = tune::Autotuner(tiny_network(), b).run();
  std::ostringstream ja, jb;
  tune::write_result_json(ja, ra, /*include_evaluated=*/true);
  tune::write_result_json(jb, rb, /*include_evaluated=*/true);
  EXPECT_EQ(ja.str(), jb.str());
  EXPECT_FALSE(ra.frontier.empty());
}

TEST(TuneSearch, AccountingAddsUpAndEverythingEvaluatedFits) {
  const tune::TuneResult r =
      tune::Autotuner(tiny_network(), tiny_options()).run();
  EXPECT_EQ(r.considered,
            r.deduped + r.pruned + static_cast<int>(r.evaluated.size()));
  EXPECT_GT(r.pruned, 0);  // the quick grid contains non-fitting configs
  EXPECT_GT(r.deduped, 0);  // paper seeds overlap the grid
  for (const tune::CandidateEval& e : r.evaluated) EXPECT_TRUE(e.fits);
}

TEST(TuneSearch, TighterConstraintsPruneMore) {
  tune::TuneOptions strict = tiny_options();
  strict.constraints.max_alm_utilization = 0.25;
  const tune::TuneResult loose =
      tune::Autotuner(tiny_network(), tiny_options()).run();
  const tune::TuneResult tight =
      tune::Autotuner(tiny_network(), strict).run();
  EXPECT_GT(tight.pruned, loose.pruned);
  for (const tune::CandidateEval& e : tight.evaluated)
    EXPECT_LE(e.alm_util, 0.25);
}

TEST(TuneSearch, MutationsStayInsideTheSpace) {
  const tune::SearchSpace space;
  Rng rng(7);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  for (int i = 0; i < 200; ++i) {
    cfg = space.mutate(cfg, rng);
    cfg.validate();  // aborts on malformed configs
    const double lo =
        cfg.optimized_build ? space.opt_clock_min : space.unopt_clock_min;
    const double hi =
        cfg.optimized_build ? space.opt_clock_max : space.unopt_clock_max;
    EXPECT_GE(cfg.clock_mhz, lo);
    EXPECT_LE(cfg.clock_mhz, hi);
  }
}

TEST(TuneSearch, ParetoFrontierDropsDominatedCollapsesTies) {
  std::vector<tune::CandidateEval> evals;
  evals.push_back(synthetic("good-small", 10.0, 100, 2.0));   // frontier
  evals.push_back(synthetic("dominated", 9.0, 120, 2.25));    // worse all axes
  evals.push_back(synthetic("good-big", 20.0, 200, 4.0));     // frontier
  evals.push_back(synthetic("tie-of-0", 10.0, 100, 2.0));     // == index 0
  evals.push_back(synthetic("efficient", 8.0, 100, 1.0));     // best gops/W
  const std::vector<std::size_t> frontier = tune::pareto_frontier(evals);
  // Sorted by ascending area; the tie collapsed to the earliest index.
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0], 0u);
  EXPECT_EQ(frontier[1], 4u);
  EXPECT_EQ(frontier[2], 2u);
  EXPECT_TRUE(tune::weakly_dominates(evals[0], evals[3]));
  EXPECT_TRUE(tune::weakly_dominates(evals[3], evals[0]));
  EXPECT_FALSE(tune::weakly_dominates(evals[0], evals[4]));
}

TEST(TuneMetrics, CountersAndLatencyHistogramExported) {
  obs::MetricsRegistry metrics;
  tune::TuneOptions opts = tiny_options();
  opts.metrics = &metrics;
  const tune::TuneResult r = tune::Autotuner(tiny_network(), opts).run();
  EXPECT_EQ(metrics.counter("tune.configs_evaluated").value(),
            static_cast<std::int64_t>(r.evaluated.size()));
  EXPECT_EQ(metrics.counter("tune.configs_pruned").value(), r.pruned);
  const std::string text = metrics.prometheus();
  EXPECT_NE(text.find("# TYPE tsca_tune_configs_evaluated counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tsca_tune_configs_pruned counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tsca_tune_eval_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("tsca_tune_eval_latency_us_count "),
            std::string::npos);
}

// --- fleet planner -----------------------------------------------------

struct PlannerScenario {
  std::vector<tune::CandidateEval> variants;
  tune::TrafficModel traffic;
};

// big is the only variant meeting the strict deadline; small is the better
// rps-per-budget choice for bulk.
PlannerScenario planner_scenario() {
  PlannerScenario s;
  s.variants.push_back(synthetic("big", 100.0, 200'000, 4.0));
  s.variants.push_back(synthetic("small", 40.0, 90'000, 2.0));
  s.traffic.classes = {
      {"strict", 300.0, 1200, 100'000'000},  // big: 1000us, small: 2500us
      {"bulk", 6000.0, 5000, 10'000'000},    // big: 100us, small: 250us
  };
  s.traffic.window_s = 0.25;
  s.traffic.seed = 9;
  return s;
}

TEST(FleetPlanner, CoversTightClassFirstThenFillsCheaply) {
  const PlannerScenario s = planner_scenario();
  const tune::FleetPlan plan = tune::plan_fleet(
      s.variants, s.traffic, {.max_alms = 520'000, .max_power_w = 11.0});
  // One big for the strict class (only feasible server), then smalls for
  // the remaining bulk demand: 1x big covers 600 strict + 4000 bulk rps,
  // two smalls cover the other 8000 bulk rps of the 2x-headroom target.
  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.groups[0].candidate, 0u);
  EXPECT_EQ(plan.groups[0].count, 1);
  EXPECT_EQ(plan.groups[1].candidate, 1u);
  EXPECT_EQ(plan.groups[1].count, 2);
  EXPECT_EQ(plan.total_alms, 380'000);
  EXPECT_DOUBLE_EQ(plan.uncovered_rps, 0.0);
  EXPECT_NEAR(plan.planned_capacity_rps, 2.0 * (300.0 + 6000.0), 1e-6);
}

TEST(FleetPlanner, RespectsBudgetAndReportsUncoveredDemand) {
  const PlannerScenario s = planner_scenario();
  const tune::FleetBudget budget{100'000, 11.0};  // only one small fits
  const tune::FleetPlan plan = tune::plan_fleet(s.variants, s.traffic, budget);
  EXPECT_LE(plan.total_alms, budget.max_alms);
  EXPECT_LE(plan.total_power_w, budget.max_power_w);
  EXPECT_EQ(plan.total_instances, 1);
  EXPECT_GT(plan.uncovered_rps, 0.0);  // strict demand is unservable
}

TEST(FleetPlanner, HomogeneousMustServeEveryClass) {
  const PlannerScenario s = planner_scenario();
  const tune::FleetPlan plan = tune::plan_homogeneous(
      s.variants, s.traffic, {.max_alms = 520'000, .max_power_w = 11.0});
  // small cannot meet the strict deadline, so the homogeneous fleet is all
  // bigs even though small wins on rps per ALM.
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].candidate, 0u);
  EXPECT_EQ(plan.groups[0].count, 2);  // min(alms: 2, power: 2)
  for (const tune::TrafficClass& cls : s.traffic.classes)
    EXPECT_LE(tune::service_us(s.variants[0], cls), cls.deadline_us);
}

// --- fleet router ------------------------------------------------------

TEST(FleetRouter, SlackRoutingPicksFeasibleOverCheap) {
  // cheap cannot make the deadline even when idle; fast can.  The slack
  // router must send everything to fast (no late completions by
  // construction); the naive earliest-free router spreads over both and
  // produces late work.
  std::vector<tune::CandidateEval> variants;
  variants.push_back(synthetic("cheap", 10.0, 50'000, 1.0));  // 1000us
  variants.push_back(synthetic("fast", 100.0, 200'000, 4.0));  // 100us
  tune::FleetPlan plan;
  plan.groups = {{0, 1}, {1, 1}};
  plan.total_instances = 2;
  tune::TrafficModel traffic;
  traffic.classes = {{"only", 2000.0, 400, 10'000'000}};
  traffic.window_s = 0.25;
  traffic.seed = 11;

  const tune::FleetReport routed =
      tune::simulate_fleet(variants, plan, traffic, 1.0);
  EXPECT_EQ(routed.late, 0);  // slack routing never executes late work
  EXPECT_GT(routed.ok, 0);
  EXPECT_EQ(routed.ok + routed.shed, routed.submitted);
  // 2000 rps x 100us fits comfortably on the fast instance alone; the
  // cheap instance (infeasible for this deadline) must stay idle, so
  // utilization is at most half.
  EXPECT_LE(routed.utilization, 0.5);

  const tune::FleetReport naive = tune::simulate_fleet(
      variants, plan, traffic, 1.0, {.slack_routing = false});
  EXPECT_EQ(naive.shed, 0);  // the naive router never sheds...
  EXPECT_GT(naive.late, 0);  // ...it burns capacity on late work instead
  EXPECT_GT(routed.ok, naive.ok);
}

TEST(FleetRouter, ShedsWhenNoInstanceCanMakeTheDeadline) {
  std::vector<tune::CandidateEval> variants;
  variants.push_back(synthetic("slow", 10.0, 50'000, 1.0));  // 1000us
  tune::FleetPlan plan;
  plan.groups = {{0, 1}};
  plan.total_instances = 1;
  tune::TrafficModel traffic;
  traffic.classes = {{"hopeless", 100.0, 500, 10'000'000}};  // 500 < 1000
  traffic.window_s = 0.25;
  traffic.seed = 12;
  const tune::FleetReport report =
      tune::simulate_fleet(variants, plan, traffic, 1.0);
  EXPECT_EQ(report.ok, 0);
  EXPECT_EQ(report.late, 0);
  EXPECT_EQ(report.shed, report.submitted);
  EXPECT_DOUBLE_EQ(report.utilization, 0.0);  // shed before execution
}

TEST(FleetRouter, DeterministicAcrossRepeatRuns) {
  const PlannerScenario s = planner_scenario();
  const tune::FleetPlan plan = tune::plan_fleet(
      s.variants, s.traffic, {.max_alms = 520'000, .max_power_w = 11.0});
  const tune::FleetReport a =
      tune::simulate_fleet(s.variants, plan, s.traffic, 2.0);
  const tune::FleetReport b =
      tune::simulate_fleet(s.variants, plan, s.traffic, 2.0);
  std::ostringstream ja, jb;
  tune::write_fleet_report_json(ja, a);
  tune::write_fleet_report_json(jb, b);
  EXPECT_EQ(ja.str(), jb.str());
}

// The router's shed rule is the serve scheduler's feasibility horizon: a
// request whose deadline cannot be met once service time is paid is
// completed as missed *before* execution.  Drive serve's real machinery
// with the same three situations the router faces (already expired, too
// little slack, comfortably feasible) and check both sides agree.
TEST(FleetRouter, ShedSemanticsMatchServeBatchScheduler) {
  serve::RequestQueue queue(8, /*fair_share=*/false);
  obs::MetricsRegistry metrics;
  serve::BatchPolicy policy;
  policy.max_batch = 4;
  policy.max_queue_delay_us = 0;
  policy.cancel_expired = true;
  policy.min_slack_us = 2000;  // the variant's service time
  serve::BatchScheduler scheduler(queue, policy, metrics);

  const serve::TimePoint now = serve::Clock::now();
  const auto push = [&](std::uint64_t id, serve::TimePoint deadline) {
    serve::Pending p;
    p.request.id = id;
    p.request.deadline = deadline;
    p.request.submitted = now;
    std::future<serve::Response> f = p.promise.get_future();
    EXPECT_EQ(queue.push(std::move(p)), serve::Admit::kAdmitted);
    return f;
  };
  auto expired = push(1, now - std::chrono::milliseconds(1));
  auto infeasible = push(2, now + std::chrono::microseconds(500));
  auto feasible = push(3, now + std::chrono::hours(1));

  std::vector<serve::Pending> batch = scheduler.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, 3u);
  EXPECT_EQ(expired.get().status, serve::Status::kDeadlineMissed);
  EXPECT_EQ(infeasible.get().status, serve::Status::kDeadlineMissed);
  serve::complete(batch[0], serve::Response{});
  (void)feasible;

  // The router, given the same slack arithmetic (deadline shorter than
  // service time), makes the identical call: shed pre-execution.
  std::vector<tune::CandidateEval> variants;
  variants.push_back(synthetic("v", 10.0, 50'000, 1.0));  // 2000us service
  tune::FleetPlan plan;
  plan.groups = {{0, 1}};
  plan.total_instances = 1;
  tune::TrafficModel traffic;
  traffic.classes = {{"tight", 50.0, 500, 20'000'000}};  // 500us < 2000us
  traffic.window_s = 0.1;
  traffic.seed = 13;
  const tune::FleetReport report =
      tune::simulate_fleet(variants, plan, traffic, 1.0);
  EXPECT_EQ(report.shed, report.submitted);
  EXPECT_EQ(report.late, 0);
}

}  // namespace
