// ProgramRegistry: multi-model compile cache with content-hash weight dedup
// and a DDR byte budget with LRU eviction — plus the lowering registry's
// extension point (a toy layer kind compiled through ScopedLowering).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "driver/compiler.hpp"
#include "driver/lowering.hpp"
#include "driver/program.hpp"
#include "driver/program_registry.hpp"
#include "driver/runtime.hpp"
#include "nn/zoo.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

core::ArchConfig test_config() { return core::ArchConfig::k256_opt(); }

nn::FeatureMapI8 make_input(const nn::FmShape& shape, std::uint64_t seed) {
  Rng rng(seed);
  nn::FeatureMapI8 fm(shape);
  for (std::size_t i = 0; i < fm.size(); ++i)
    fm.data()[i] = static_cast<std::int8_t>(rng.next_int(-64, 64));
  return fm;
}

// The unique weight bytes one compiled program charges to the budget.
std::uint64_t program_bytes(driver::ProgramRegistry& reg,
                            const std::string& id) {
  const driver::ProgramHandle h = reg.acquire(id);
  return h.program().ddr_image().size();
}

TEST(RegistryBasics, AddAcquireAndIntrospect) {
  const zoo::ZooModel m = zoo::make_ternary_mlp();
  driver::ProgramRegistry reg(test_config());
  EXPECT_FALSE(reg.has_model("mlp"));
  reg.add_model("mlp", m.net, m.model);
  EXPECT_TRUE(reg.has_model("mlp"));
  EXPECT_EQ(reg.model_ids(), std::vector<std::string>{"mlp"});
  EXPECT_FALSE(reg.resident("mlp"));  // compilation is deferred

  const driver::ProgramHandle h = reg.acquire("mlp");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.model_id(), "mlp");
  EXPECT_TRUE(reg.resident("mlp"));
  EXPECT_EQ(reg.stats().compiles, 1u);
  EXPECT_EQ(reg.stats().cache_hits, 0u);
  EXPECT_GT(reg.stats().resident_bytes, 0u);

  const driver::ProgramHandle again = reg.acquire("mlp");
  EXPECT_EQ(reg.stats().compiles, 1u);
  EXPECT_EQ(reg.stats().cache_hits, 1u);
  EXPECT_EQ(&h.program(), &again.program());
}

TEST(RegistryBasics, AcquiredProgramRunsCorrectly) {
  const zoo::ZooModel m = zoo::make_residual_cifar();
  driver::ProgramRegistry reg(test_config());
  reg.add_model("res", m.net, m.model);
  const driver::ProgramHandle h = reg.acquire("res");

  const nn::FeatureMapI8 input = make_input(m.net.input_shape(), 0x1234);
  const std::vector<nn::ActivationI8> ref =
      nn::forward_i8_all(m.net, m.model.weights, input);

  core::Accelerator acc(test_config());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kFast});
  const driver::NetworkRun run = runtime.run_network(h.program(), input);
  EXPECT_EQ(run.logits, ref.back().flat);
}

TEST(RegistryDedup, SharedWeightImagesChargedOnce) {
  // Two ids over the very same recipe: every weight image content-hashes
  // identically, so the second program's streams are deduped — charged zero
  // new bytes, all of them counted as saved.
  const zoo::ZooModel m = zoo::make_mobile_depthwise();
  driver::ProgramRegistry reg(test_config());
  reg.add_model("a", m.net, m.model);
  reg.add_model("b", m.net, m.model);

  const driver::ProgramHandle ha = reg.acquire("a");
  const std::uint64_t after_first = reg.stats().resident_bytes;
  ASSERT_GT(after_first, 0u);
  EXPECT_EQ(reg.stats().shared_bytes_saved, 0u);

  const driver::ProgramHandle hb = reg.acquire("b");
  EXPECT_EQ(reg.stats().compiles, 2u);  // programs compile per id...
  EXPECT_EQ(reg.stats().resident_bytes, after_first);  // ...bytes do not
  EXPECT_EQ(reg.stats().shared_bytes_saved, after_first);
}

TEST(RegistryDedup, DistinctWeightsChargeSeparately) {
  const zoo::ZooModel a = zoo::make_mobile_depthwise(21);
  const zoo::ZooModel b = zoo::make_mobile_depthwise(22);
  driver::ProgramRegistry reg(test_config());
  reg.add_model("a", a.net, a.model);
  reg.add_model("b", b.net, b.model);
  const driver::ProgramHandle ha = reg.acquire("a");
  const std::uint64_t after_first = reg.stats().resident_bytes;
  const driver::ProgramHandle hb = reg.acquire("b");
  EXPECT_GT(reg.stats().resident_bytes, after_first);
  EXPECT_EQ(reg.stats().shared_bytes_saved, 0u);
}

TEST(RegistryEviction, OverBudgetEvictsLeastRecentlyAcquired) {
  const zoo::ZooModel a = zoo::make_residual_cifar(31);
  const zoo::ZooModel b = zoo::make_residual_cifar(32);
  const zoo::ZooModel c = zoo::make_residual_cifar(33);

  // Learn every program's footprint with an unbudgeted probe (zero-skip
  // weight streams make sizes seed-dependent, not topology-dependent), then
  // budget for any two programs but never all three.
  std::uint64_t ba = 0, bb = 0, bc = 0;
  {
    driver::ProgramRegistry probe(test_config());
    probe.add_model("a", a.net, a.model);
    probe.add_model("b", b.net, b.model);
    probe.add_model("c", c.net, c.model);
    ba = program_bytes(probe, "a");
    bb = program_bytes(probe, "b");
    bc = program_bytes(probe, "c");
  }
  ASSERT_GT(ba, 0u);
  const std::uint64_t budget =
      std::max({ba + bb, ba + bc, bb + bc});

  driver::ProgramRegistry reg(test_config(), {.ddr_budget_bytes = budget});
  reg.add_model("a", a.net, a.model);
  reg.add_model("b", b.net, b.model);
  reg.add_model("c", c.net, c.model);

  (void)reg.acquire("a");
  (void)reg.acquire("b");
  // Touch a again: now b is the least recently acquired.
  (void)reg.acquire("a");
  EXPECT_EQ(reg.stats().evictions, 0u);

  (void)reg.acquire("c");
  EXPECT_EQ(reg.stats().evictions, 1u);
  EXPECT_TRUE(reg.resident("a"));
  EXPECT_FALSE(reg.resident("b"));  // LRU victim
  EXPECT_TRUE(reg.resident("c"));
  EXPECT_LE(reg.stats().resident_bytes, budget);
}

TEST(RegistryEviction, ReacquireRecompilesWithFreshStamp) {
  const zoo::ZooModel a = zoo::make_residual_cifar(41);
  const zoo::ZooModel b = zoo::make_residual_cifar(42);
  std::uint64_t bytes = 0;  // budget holding either program, never both
  {
    driver::ProgramRegistry probe(test_config());
    probe.add_model("a", a.net, a.model);
    probe.add_model("b", b.net, b.model);
    bytes = std::max(program_bytes(probe, "a"), program_bytes(probe, "b"));
  }

  driver::ProgramRegistry reg(test_config(), {.ddr_budget_bytes = bytes});
  reg.add_model("a", a.net, a.model);
  reg.add_model("b", b.net, b.model);

  std::uint64_t first_stamp = 0;
  {
    const driver::ProgramHandle ha = reg.acquire("a");
    first_stamp = ha.program().stamp();
  }
  (void)reg.acquire("b");  // evicts a (idle, unpinned)
  EXPECT_FALSE(reg.resident("a"));
  EXPECT_EQ(reg.stats().evictions, 1u);

  const driver::ProgramHandle ha = reg.acquire("a");
  EXPECT_EQ(reg.stats().compiles, 3u);  // a, b, a again
  // A fresh stamp: worker contexts holding the evicted image restage.
  EXPECT_NE(ha.program().stamp(), first_stamp);
}

TEST(RegistryEviction, PinnedModelsAreNeverEvicted) {
  const zoo::ZooModel a = zoo::make_residual_cifar(51);
  const zoo::ZooModel b = zoo::make_residual_cifar(52);
  std::uint64_t bytes = 0;  // budget holding either program, never both
  {
    driver::ProgramRegistry probe(test_config());
    probe.add_model("a", a.net, a.model);
    probe.add_model("b", b.net, b.model);
    bytes = std::max(program_bytes(probe, "a"), program_bytes(probe, "b"));
  }

  driver::ProgramRegistry reg(test_config(), {.ddr_budget_bytes = bytes});
  reg.add_model("a", a.net, a.model, /*pinned=*/true);
  reg.add_model("b", b.net, b.model);

  (void)reg.acquire("a");  // handle dropped; the pin alone protects it
  (void)reg.acquire("b");  // over budget, but the only candidate is pinned
  EXPECT_TRUE(reg.resident("a"));
  EXPECT_TRUE(reg.resident("b"));
  EXPECT_EQ(reg.stats().evictions, 0u);  // soft overage, not eviction
}

TEST(RegistryEviction, InUseModelsAreNeverEvicted) {
  const zoo::ZooModel a = zoo::make_residual_cifar(61);
  const zoo::ZooModel b = zoo::make_residual_cifar(62);
  std::uint64_t bytes = 0;  // budget holding either program, never both
  {
    driver::ProgramRegistry probe(test_config());
    probe.add_model("a", a.net, a.model);
    probe.add_model("b", b.net, b.model);
    bytes = std::max(program_bytes(probe, "a"), program_bytes(probe, "b"));
  }

  driver::ProgramRegistry reg(test_config(), {.ddr_budget_bytes = bytes});
  reg.add_model("a", a.net, a.model);
  reg.add_model("b", b.net, b.model);

  const driver::ProgramHandle ha = reg.acquire("a");  // held: in use
  (void)reg.acquire("b");
  EXPECT_TRUE(reg.resident("a"));  // a lease blocks eviction
  EXPECT_EQ(reg.stats().evictions, 0u);

  // Once the lease dies the next over-budget acquire may evict it.
  {
    driver::ProgramHandle drop = reg.acquire("a");
    (void)drop;
  }
  (void)reg.acquire("b");  // cache hit: refreshes b, but no headroom needed
  const driver::ProgramHandle hb = reg.acquire("b");
  EXPECT_TRUE(reg.resident("b"));
}

TEST(RegistryErrors, UnknownModelIsTyped) {
  driver::ProgramRegistry reg(test_config());
  try {
    (void)reg.acquire("nope");
    FAIL() << "acquire of an unknown id did not throw";
  } catch (const driver::UnknownModelError& e) {
    EXPECT_EQ(e.model_id(), "nope");
  }
}

TEST(RegistryErrors, SingleProgramOverBudgetIsInfeasible) {
  const zoo::ZooModel m = zoo::make_ternary_mlp();
  driver::ProgramRegistry reg(test_config(), {.ddr_budget_bytes = 16});
  reg.add_model("mlp", m.net, m.model);
  EXPECT_THROW((void)reg.acquire("mlp"), driver::RegistryBudgetError);
}

TEST(RegistryErrors, IdValidationAndDuplicates) {
  const zoo::ZooModel m = zoo::make_ternary_mlp();
  driver::ProgramRegistry reg(test_config());
  EXPECT_THROW(reg.add_model("", m.net, m.model), Error);
  EXPECT_THROW(reg.add_model("has space", m.net, m.model), Error);
  EXPECT_THROW(reg.add_model(std::string(65, 'x'), m.net, m.model), Error);
  reg.add_model("ok_id.v1-a", m.net, m.model);
  EXPECT_THROW(reg.add_model("ok_id.v1-a", m.net, m.model), Error);
}

// The acceptance test for the pluggable compiler: a layer kind the enum has
// never heard of, registered from outside, compiles and runs — and without
// the registration the compiler reports it as unregistered, proving no
// hard-coded kind switch remains in the lowering path.
TEST(RegistryLowering, ToyKindCompilesThroughScopedRegistration) {
  const auto kToyKind = static_cast<nn::LayerKind>(99);
  nn::Network net({4, 8, 8}, "toy_net");
  nn::LayerSpec spec;
  spec.kind = kToyKind;
  spec.name = "toy0";
  net.add_layer(spec);
  const quant::QuantizedModel model;  // the toy layer carries no weights
  const core::ArchConfig cfg = test_config();

  EXPECT_THROW(driver::NetworkProgram::compile(net, model, cfg), ConfigError);

  // Lower the toy kind as an identity 1x1/stride-1 max pool.
  driver::ScopedLowering guard(kToyKind, [](driver::LoweringContext& ctx) {
    driver::NetworkProgram::Step step;
    step.exec = driver::NetworkProgram::Step::Exec::kPadPool;
    step.pool = ctx.add_pool(driver::plan_pool(
        ctx.cfg(), ctx.fm, ctx.fm, core::Opcode::kPool, 1, 1, 0, 0));
    ctx.push_step(step);
  });
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(net, model, cfg);

  const nn::FeatureMapI8 input = make_input(net.input_shape(), 0x70F);
  for (const driver::ExecMode mode :
       {driver::ExecMode::kCycle, driver::ExecMode::kFast}) {
    core::Accelerator acc(cfg);
    sim::Dram dram(16u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = mode});
    const driver::NetworkRun run = runtime.run_network(program, input);
    EXPECT_EQ(run.final_fm, input) << driver::exec_mode_name(mode);
  }
}

// Registry + zoo end to end: every zoo model acquired through one registry
// produces reference-exact logits.
TEST(RegistryZooIntegration, AllZooModelsServeFromOneRegistry) {
  const zoo::ZooModel res = zoo::make_residual_cifar();
  const zoo::ZooModel mob = zoo::make_mobile_depthwise();
  const zoo::ZooModel mlp = zoo::make_ternary_mlp();
  driver::ProgramRegistry reg(test_config());
  reg.add_model("res", res.net, res.model);
  reg.add_model("mob", mob.net, mob.model);
  reg.add_model("mlp", mlp.net, mlp.model);

  const zoo::ZooModel* models[] = {&res, &mob, &mlp};
  const char* ids[] = {"res", "mob", "mlp"};
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(ids[i]);
    const driver::ProgramHandle h = reg.acquire(ids[i]);
    const nn::FeatureMapI8 input =
        make_input(models[i]->net.input_shape(), 0xAB0 + i);
    const std::vector<nn::ActivationI8> ref = nn::forward_i8_all(
        models[i]->net, models[i]->model.weights, input);
    core::Accelerator acc(test_config());
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kFast});
    const driver::NetworkRun run = runtime.run_network(h.program(), input);
    EXPECT_EQ(run.logits, ref.back().flat);
  }
}

}  // namespace
}  // namespace tsca
