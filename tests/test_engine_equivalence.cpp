// Randomized software≈hardware equivalence sweep.
//
// The paper's methodology rests on the multi-threaded software behaving like
// the synthesized hardware.  Here randomized layer stacks (pad/conv/pool in
// random geometries and sparsities) run under the cycle engine, the thread
// engine, and the functional fast path, and all three must agree bit-exactly
// with each other and with the int8 reference — a property sweep on top of
// the targeted cases in test_accelerator.cpp.
//
// The fast path additionally reports PerfModel *predictions* instead of
// measured statistics; the sweep pins the work counters (MACs, weight
// commands/bubbles, pool ops, instruction counts) to the cycle engine's
// measurements exactly, and the drift test bounds how far predicted cycle
// counts may wander from simulated ones.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/accelerator.hpp"
#include "core/simd.hpp"
#include "driver/program.hpp"
#include "driver/runtime.hpp"
#include "nn/network.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

namespace tsca {
namespace {

struct RandomStack {
  nn::Network net;
  quant::QuantizedModel model;
  nn::FeatureMapI8 input;
};

RandomStack make_stack(std::uint64_t seed) {
  Rng rng(seed);
  const int c = rng.next_int(1, 10);
  const int h = rng.next_int(8, 20);
  const int w = rng.next_int(8, 20);
  nn::Network net({c, h, w}, "rand");
  nn::FmShape shape{c, h, w};
  const int depth = rng.next_int(2, 5);
  for (int layer = 0; layer < depth; ++layer) {
    const int kind = rng.next_int(0, 2);
    if (kind == 0 && shape.h >= 5 && shape.w >= 5) {
      const int pad = rng.next_int(0, 2);
      const int kernel = 1 + 2 * rng.next_int(0, 1);  // 1 or 3
      if (pad > 0) {
        net.add_pad(nn::Padding::uniform(pad));
        shape.h += 2 * pad;
        shape.w += 2 * pad;
      }
      const int oc = rng.next_int(1, 12);
      net.add_conv({.out_c = oc,
                    .kernel = kernel,
                    .stride = 1,
                    .relu = rng.next_bool()});
      shape = {oc, shape.h - kernel + 1, shape.w - kernel + 1};
    } else if (kind == 1 && shape.h >= 6 && shape.w >= 6) {
      const int size = rng.next_int(2, 3);
      const int stride = rng.next_int(1, size);
      net.add_maxpool({.size = size, .stride = stride});
      shape = {shape.c, (shape.h - size) / stride + 1,
               (shape.w - size) / stride + 1};
    } else {
      net.add_pad(nn::Padding{rng.next_int(0, 2), rng.next_int(0, 2),
                              rng.next_int(0, 2), rng.next_int(0, 2)});
      const auto inferred = net.infer_shapes().back().fm;
      shape = inferred;
    }
  }

  nn::WeightsF weights = nn::init_random_weights(net, rng);
  // Random sparsification.
  for (auto& bank : weights.conv)
    for (std::size_t i = 0; i < bank.size(); ++i)
      if (rng.next_double() < 0.5) bank.data()[i] = 0.0f;

  nn::FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);
  quant::QuantizedModel model = quant::quantize_network(net, weights, {image});
  nn::FeatureMapI8 input = quant::quantize_fm(image, model.input_exp);
  return {std::move(net), std::move(model), std::move(input)};
}

driver::NetworkRun run_stack(const RandomStack& stack, driver::ExecMode mode) {
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 2048;  // small: stripes on bigger stacks
  core::Accelerator acc(cfg);
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma,
                          {.mode = mode, .keep_activations = true});
  return runtime.run_network(stack.net, stack.model, stack.input);
}

class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, RandomStackAgreesAcrossEnginesAndReference) {
  const RandomStack stack =
      make_stack(0xE0E0 + static_cast<std::uint64_t>(GetParam()) * 7919);

  const std::vector<nn::ActivationI8> ref =
      nn::forward_i8_all(stack.net, stack.model.weights, stack.input);

  const driver::NetworkRun cycle = run_stack(stack, driver::ExecMode::kCycle);
  const driver::NetworkRun thread = run_stack(stack, driver::ExecMode::kThread);
  const driver::NetworkRun fast = run_stack(stack, driver::ExecMode::kFast);

  ASSERT_EQ(cycle.activations.size(), thread.activations.size());
  ASSERT_EQ(cycle.activations.size(), fast.activations.size());
  for (std::size_t i = 0; i < cycle.activations.size(); ++i) {
    EXPECT_EQ(cycle.activations[i], thread.activations[i])
        << "thread engine divergence after layer " << i;
    EXPECT_EQ(cycle.activations[i], fast.activations[i])
        << "fast path divergence after layer " << i;
    EXPECT_EQ(cycle.activations[i], ref[i].fm)
        << "reference mismatch after layer " << stack.net.layers()[i].name;
  }
  EXPECT_EQ(cycle.final_fm, ref.back().fm);
  EXPECT_EQ(fast.final_fm, cycle.final_fm);

  // The fast path reports PerfModel predictions: cycles are flagged, and the
  // predicted work counters must equal the cycle engine's measurements —
  // the performance model counts the same zero-skip schedule the hardware
  // executes.  (DMA/bank-traffic counters stay zero in fast mode: no
  // simulation ran, so none are claimed.)
  ASSERT_EQ(cycle.layers.size(), fast.layers.size());
  for (std::size_t i = 0; i < cycle.layers.size(); ++i) {
    const driver::LayerRun& c = cycle.layers[i];
    const driver::LayerRun& f = fast.layers[i];
    if (!c.on_accelerator) {
      EXPECT_FALSE(f.cycles_predicted) << c.name;
      continue;
    }
    EXPECT_FALSE(c.cycles_predicted) << c.name;
    EXPECT_TRUE(f.cycles_predicted) << c.name;
    EXPECT_GT(f.cycles, 0u) << c.name;
    EXPECT_EQ(f.macs, c.macs) << c.name;
    EXPECT_EQ(f.counters.macs_performed, c.counters.macs_performed) << c.name;
    EXPECT_EQ(f.counters.weight_cmds, c.counters.weight_cmds) << c.name;
    EXPECT_EQ(f.counters.weight_bubbles, c.counters.weight_bubbles) << c.name;
    EXPECT_EQ(f.counters.pool_ops, c.counters.pool_ops) << c.name;
    EXPECT_EQ(f.counters.conv_instrs, c.counters.conv_instrs) << c.name;
    EXPECT_EQ(f.counters.pad_instrs, c.counters.pad_instrs) << c.name;
    EXPECT_EQ(f.counters.pool_instrs, c.counters.pool_instrs) << c.name;
    EXPECT_EQ(f.counters.positions, c.counters.positions) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence, ::testing::Range(0, 12));

// Restores the entry SIMD backend (the CPUID / TSCA_FORCE_BACKEND choice) no
// matter how a backend-switching test exits.
struct BackendGuard {
  std::string entry{core::simd::backend_name()};
  ~BackendGuard() { core::simd::select_backend(entry.c_str()); }
};

// Every compiled-in backend this host can run — scalar, SSE2, and (when
// supported) AVX2/AVX-512, the AVX-512 one taking the conv_win whole-window
// kernel on 3x3 layers — must reproduce the cycle engine bit-exactly: same
// activations, same predicted work counters, and the same host-side
// FastConvStats as the scalar backend (the conv_win mask-reconstructed skip
// accounting is pinned to the conv_run path's, not merely close to it).
// tier1.sh additionally runs the whole suite under TSCA_FORCE_BACKEND for
// each backend; this in-process matrix keeps the property one `ctest` away.
TEST(EngineEquivalence, EveryBackendMatchesCycleEngineExactly) {
  BackendGuard guard;
  for (const int param : {1, 5, 9}) {
    const RandomStack stack =
        make_stack(0xE0E0 + static_cast<std::uint64_t>(param) * 7919);
    const driver::NetworkRun cycle = run_stack(stack, driver::ExecMode::kCycle);

    ASSERT_TRUE(core::simd::select_backend("scalar"));
    const driver::NetworkRun scalar = run_stack(stack, driver::ExecMode::kFast);

    for (const core::simd::SimdBackend* be : core::simd::available_backends()) {
      ASSERT_TRUE(core::simd::select_backend(be->name)) << be->name;
      const driver::NetworkRun fast = run_stack(stack, driver::ExecMode::kFast);
      SCOPED_TRACE(std::string("backend ") + be->name + " seed " +
                   std::to_string(param));

      ASSERT_EQ(cycle.activations.size(), fast.activations.size());
      for (std::size_t i = 0; i < cycle.activations.size(); ++i)
        EXPECT_EQ(cycle.activations[i], fast.activations[i])
            << "divergence after layer " << i;
      EXPECT_EQ(cycle.final_fm, fast.final_fm);
      EXPECT_EQ(cycle.logits, fast.logits);

      ASSERT_EQ(cycle.layers.size(), fast.layers.size());
      for (std::size_t i = 0; i < cycle.layers.size(); ++i) {
        const driver::LayerRun& c = cycle.layers[i];
        const driver::LayerRun& f = fast.layers[i];
        if (!c.on_accelerator) continue;
        EXPECT_EQ(f.counters.macs_performed, c.counters.macs_performed)
            << c.name;
        EXPECT_EQ(f.counters.weight_cmds, c.counters.weight_cmds) << c.name;
        EXPECT_EQ(f.counters.weight_bubbles, c.counters.weight_bubbles)
            << c.name;
        EXPECT_EQ(f.counters.pool_ops, c.counters.pool_ops) << c.name;
        EXPECT_EQ(f.counters.positions, c.counters.positions) << c.name;
        // Host-side activation-skip accounting must also be backend-exact:
        // the AVX-512 conv_win path reconstructs per-region skip counts from
        // window masks and has to land on the very numbers the conv_run walk
        // counts directly.
        const core::FastConvStats& sf = scalar.layers[i].fast;
        EXPECT_EQ(f.fast.regions, sf.regions) << c.name;
        EXPECT_EQ(f.fast.regions_zero, sf.regions_zero) << c.name;
        EXPECT_EQ(f.fast.mac_tiles, sf.mac_tiles) << c.name;
        EXPECT_EQ(f.fast.mac_tiles_skipped, sf.mac_tiles_skipped) << c.name;
      }
    }
  }
}

// Batch-major execution packs several images' tiles into one SIMD register
// group; per-image results must still be bit-identical to serial runs —
// including a batch larger than Runtime::kFastBatchLanes, so the lane
// remainder path is exercised — on every backend.
TEST(EngineEquivalence, BatchMajorMatchesSerialPerImage) {
  BackendGuard guard;
  const RandomStack stack = make_stack(0xE0E0 + 4 * 7919);
  core::ArchConfig cfg = core::ArchConfig::k256_opt();
  cfg.bank_words = 2048;
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(stack.net, stack.model, cfg);

  const int batch = driver::Runtime::kFastBatchLanes + 3;
  Rng rng(0xBA7C);
  std::vector<nn::FeatureMapI8> inputs;
  inputs.push_back(stack.input);
  for (int i = 1; i < batch; ++i) {
    nn::FeatureMapI8 fm(stack.net.input_shape());
    for (std::size_t j = 0; j < fm.size(); ++j)
      fm.data()[j] = static_cast<std::int8_t>(rng.next_int(-64, 64));
    inputs.push_back(std::move(fm));
  }

  for (const core::simd::SimdBackend* be : core::simd::available_backends()) {
    ASSERT_TRUE(core::simd::select_backend(be->name)) << be->name;
    SCOPED_TRACE(std::string("backend ") + be->name);

    core::Accelerator acc(cfg);
    sim::Dram dram(64u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma,
                            {.mode = driver::ExecMode::kFast});
    std::vector<driver::NetworkRun> serial;
    for (const nn::FeatureMapI8& input : inputs)
      serial.push_back(runtime.run_network(program, input));
    const driver::BatchNetworkRun batched =
        runtime.run_network_batch(program, inputs);

    ASSERT_EQ(batched.requests.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batched.requests[i].flat_output, serial[i].flat_output)
          << "image " << i;
      EXPECT_EQ(batched.requests[i].logits, serial[i].logits) << "image " << i;
      EXPECT_EQ(batched.requests[i].final_fm, serial[i].final_fm)
          << "image " << i;
    }
  }
}

// Predicted cycle counts are a model, not a replay: the cycle engine resolves
// lane overlap dynamically while PerfModel bounds it per position.  The
// prediction must stay within 10% (or 128 cycles for tiny layers) of the
// simulated count, layer by layer — close enough to rank layers and size
// batches, and a tripwire for either side drifting.
TEST(PerfModelDrift, FastPredictionsTrackCycleEngine) {
  for (const std::uint64_t seed :
       {0x5EEDull, 0xD41F7ull, 0xE0E0ull + 3 * 7919, 0xE0E0ull + 9 * 7919}) {
    const RandomStack stack = make_stack(seed);
    const driver::NetworkRun cycle = run_stack(stack, driver::ExecMode::kCycle);
    const driver::NetworkRun fast = run_stack(stack, driver::ExecMode::kFast);
    ASSERT_EQ(cycle.layers.size(), fast.layers.size());
    for (std::size_t i = 0; i < cycle.layers.size(); ++i) {
      if (!cycle.layers[i].on_accelerator) continue;
      const auto measured = static_cast<std::int64_t>(cycle.layers[i].cycles);
      const auto predicted = static_cast<std::int64_t>(fast.layers[i].cycles);
      const std::int64_t band =
          std::max<std::int64_t>(128, measured / 10);
      EXPECT_LE(std::abs(predicted - measured), band)
          << "seed " << seed << " layer " << cycle.layers[i].name
          << ": predicted " << predicted << " vs measured " << measured;
    }
  }
}

TEST(EngineEquivalence, SixteenUnoptVariantAlsoAgrees) {
  const RandomStack stack = make_stack(0xABCD);
  const std::vector<nn::ActivationI8> ref =
      nn::forward_i8_all(stack.net, stack.model.weights, stack.input);
  core::ArchConfig cfg = core::ArchConfig::k16_unopt();
  cfg.bank_words = 4096;
  for (const driver::ExecMode mode :
       {driver::ExecMode::kCycle, driver::ExecMode::kFast}) {
    core::Accelerator acc(cfg);
    sim::Dram dram(32u << 20);
    sim::DmaEngine dma(dram);
    driver::Runtime runtime(acc, dram, dma, {.mode = mode});
    const driver::NetworkRun run =
        runtime.run_network(stack.net, stack.model, stack.input);
    EXPECT_EQ(run.final_fm, ref.back().fm)
        << driver::exec_mode_name(mode) << " mode";
  }
}

}  // namespace
}  // namespace tsca
