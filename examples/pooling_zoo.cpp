// Pooling zoo — the Fig. 5 unit's generality claim, exercised.
//
// "With just a few instructions, the padding/max-pooling unit is capable of
// realizing any padding/max-pooling layer (e.g. a variety of max-pooling
// region sizes or strides)."  This example runs a spread of geometries —
// including overlapping windows and windows straddling tile boundaries —
// through the cycle-accurate unit and checks each against the reference,
// reporting the micro-op cost per output tile.
//
// Usage: ./build/examples/pooling_zoo
#include <cstdio>

#include "core/accelerator.hpp"
#include "core/poolgen.hpp"
#include "driver/runtime.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

using namespace tsca;

int main() {
  Rng rng(7);
  nn::FeatureMapI8 input({4, 24, 24});
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-60, 60));

  core::Accelerator accelerator(core::ArchConfig::k256_opt());
  sim::Dram dram(32u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(accelerator, dram, dma, {.mode = driver::ExecMode::kCycle});

  struct Geometry {
    const char* label;
    int win;
    int stride;
  };
  const Geometry zoo[] = {
      {"VGG pool (2x2 s2)", 2, 2}, {"3x3 s3", 3, 3},
      {"overlapping 3x3 s2", 3, 2}, {"overlapping 3x3 s1", 3, 1},
      {"wide 5x5 s2 (straddles tiles)", 5, 2}, {"6x6 s3", 6, 3},
      {"global-ish 8x8 s8", 8, 8},
  };

  std::printf("%-32s %9s %9s %10s %8s\n", "geometry", "out", "cycles",
              "ops/otile", "exact");
  bool all_ok = true;
  for (const Geometry& g : zoo) {
    const nn::FeatureMapI8 expected =
        nn::maxpool_i8(input, {g.win, g.stride});
    driver::LayerRun run;
    const pack::TiledFm out =
        runtime.run_pad_pool(pack::to_tiled(input), core::Opcode::kPool,
                             expected.shape(), g.win, g.stride, 0, 0, run);
    const bool ok = pack::from_tiled(out) == expected;
    all_ok = all_ok && ok;
    const int otiles = pack::tiles_for(expected.shape().h) *
                       pack::tiles_for(expected.shape().w) *
                       expected.shape().c;
    std::printf("%-32s %4dx%-4d %9llu %10.2f %8s\n", g.label,
                expected.shape().h, expected.shape().w,
                static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.counters.pool_ops) / otiles,
                ok ? "yes" : "NO");
  }

  // Padding variants, including asymmetric.
  const nn::Padding pads[] = {nn::Padding::uniform(1), nn::Padding::uniform(3),
                              nn::Padding{0, 2, 3, 1}};
  for (const nn::Padding& pad : pads) {
    const nn::FeatureMapI8 expected = nn::pad_i8(input, pad);
    driver::LayerRun run;
    const pack::TiledFm out = runtime.run_pad_pool(
        pack::to_tiled(input), core::Opcode::kPad, expected.shape(), 1, 1,
        -pad.top, -pad.left, run);
    const bool ok = pack::from_tiled(out) == expected;
    all_ok = all_ok && ok;
    std::printf("pad t%d b%d l%d r%d %20s %9llu %18s\n", pad.top, pad.bottom,
                pad.left, pad.right, "",
                static_cast<unsigned long long>(run.cycles),
                ok ? "yes" : "NO");
  }

  std::printf("\n%s\n", all_ok ? "every geometry bit-exact — the Fig. 5 unit "
                                 "is general as claimed"
                               : "MISMATCH — bug");
  return all_ok ? 0 : 1;
}
