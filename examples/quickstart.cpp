// Quickstart: run one convolution layer on the accelerator.
//
// Shows the whole public-API flow on a toy layer:
//   1. make an int8 feature map and filter bank,
//   2. pack the filters for zero-skipping,
//   3. run on the cycle-accurate engine via the host runtime,
//   4. check against the int8 reference and look at the counters.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "nn/layers.hpp"
#include "pack/weight_pack.hpp"
#include "util/rng.hpp"

using namespace tsca;

int main() {
  Rng rng(1);

  // A small layer: 8 input channels, 16x16 pixels, 8 filters of 3x3.
  nn::FeatureMapI8 input({8, 16, 16});
  for (std::size_t i = 0; i < input.size(); ++i)
    input.data()[i] = static_cast<std::int8_t>(rng.next_int(-40, 40));

  nn::FilterBankI8 filters({8, 8, 3, 3});
  for (std::size_t i = 0; i < filters.size(); ++i)
    if (rng.next_double() < 0.4)  // 60 % of weights pruned away
      filters.data()[i] = static_cast<std::int8_t>(rng.next_int(-20, 20));
  const std::vector<std::int32_t> bias(8, 32);
  const nn::Requant requant{.shift = 6, .relu = true};

  // Offline packing: non-zero weights + intra-tile offsets (paper §III-B).
  const pack::PackedFilters packed = pack::pack_filters(filters);
  std::printf("packed %lld non-zero weights of %zu (density %.0f%%)\n",
              static_cast<long long>(packed.total_nonzeros()), filters.size(),
              100.0 * static_cast<double>(packed.total_nonzeros()) /
                  static_cast<double>(filters.size()));

  // The 256-MAC/cycle accelerator (Fig. 3), cycle-accurate execution.
  core::Accelerator accelerator(core::ArchConfig::k256_opt());
  sim::Dram dram(64u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(accelerator, dram, dma, {.mode = driver::ExecMode::kCycle});

  driver::LayerRun run;
  const pack::TiledFm out_tiled = runtime.run_conv(
      pack::to_tiled(input), packed, bias, requant, run);
  const nn::FeatureMapI8 output = pack::from_tiled(out_tiled);

  // The accelerator is bit-exact with the int8 reference.
  const nn::FeatureMapI8 expected =
      nn::conv2d_i8(input, filters, bias, /*stride=*/1, requant);
  std::printf("bit-exact vs reference: %s\n",
              output == expected ? "yes" : "NO (bug!)");

  std::printf("cycles: %llu  (ideal dense: %lld)\n",
              static_cast<unsigned long long>(run.cycles),
              static_cast<long long>(run.macs /
                                     accelerator.config().macs_per_cycle()));
  std::printf("MACs performed: %lld of %lld dense (zero-skipping)\n",
              static_cast<long long>(run.counters.macs_performed),
              static_cast<long long>(run.macs));
  std::printf("weight commands: %lld (%lld bubble slots)\n",
              static_cast<long long>(run.counters.weight_cmds),
              static_cast<long long>(run.counters.weight_bubbles));
  std::printf("SRAM traffic: %lld IFM tile reads, %lld OFM tile writes\n",
              static_cast<long long>(run.counters.ifm_tile_reads),
              static_cast<long long>(run.counters.ofm_tile_writes));
  std::printf("output[0] corner: %d %d / %d %d\n", output.at(0, 0, 0),
              output.at(0, 0, 1), output.at(0, 1, 0), output.at(0, 1, 1));
  return output == expected ? 0 : 1;
}
