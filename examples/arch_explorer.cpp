// Architecture exploration — the paper's "variants from software and
// constraint changes alone" (§V), as a parameter sweep.
//
// Sweeps lanes×group, clock, bank size and weight-scratchpad size over the
// full-size VGG-16 workload with the validated performance model, and prints
// performance / area / power trade-offs — reproducing how the authors
// explored 16-unopt → 512-opt, and going beyond (e.g. a hypothetical
// 1024-MAC part on a GT1150).  Each design point goes through
// tune::evaluate_config, the same evaluation the autotuner searches over
// (src/tune/autotuner.hpp runs this sweep's logic at scale).
//
// Usage: ./build/examples/arch_explorer [--pruned] [--json]
//   --json  machine-readable output: one JSON object per design point
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "driver/study.hpp"
#include "tune/evaluate.hpp"

using namespace tsca;

namespace {

bool g_json = false;
bool g_first_row = true;

void section(const char* title) {
  if (g_json)
    std::printf("%s  {\"section\": \"%s\", \"rows\": [\n",
                g_first_row ? "" : "\n  ]},\n", title);
  else
    std::printf("--- %s ---\n", title);
  g_first_row = true;
}

void report(const core::ArchConfig& cfg, const driver::StudyNetwork& net,
            const model::FpgaDevice& device) {
  const tune::CandidateEval eval = tune::evaluate_config(cfg, net, device);
  if (g_json) {
    if (!g_first_row) std::printf(",\n");
    std::printf("    ");
    tune::write_eval_json(std::cout, eval);
    std::cout.flush();
  } else {
    tune::write_eval_row(std::cout, eval);
  }
  g_first_row = false;
}

}  // namespace

int main(int argc, char** argv) {
  bool pruned = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pruned") == 0) pruned = true;
    if (std::strcmp(argv[i], "--json") == 0) g_json = true;
  }

  const driver::StudyNetwork net =
      driver::build_study_network({.pruned = pruned});
  if (g_json) {
    std::printf("{\"model\": \"%s\", \"sections\": [\n",
                net.model_name.c_str());
  } else {
    std::printf("VGG-16 (%s) architecture exploration\n\n",
                net.model_name.c_str());
    tune::write_eval_header(std::cout);
  }

  const model::FpgaDevice sx660 = model::FpgaDevice::arria10_sx660();
  section("the paper's four variants (SX660)");
  for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants())
    report(cfg, net, sx660);

  section("clock sweep on 256 MACs/cycle");
  for (double mhz : {55.0, 100.0, 150.0, 200.0}) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.name = "256@" + std::to_string(static_cast<int>(mhz));
    cfg.clock_mhz = mhz;
    report(cfg, net, sx660);
  }

  section("weight scratchpad sweep (256-opt)");
  for (int words : {16, 64, 256, 1024}) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.name = "256 ws" + std::to_string(words);
    cfg.weight_scratch_words = words;
    report(cfg, net, sx660);
  }

  section(
      "scale-out on a GT1150 (paper §V: 'software changes alone would allow "
      "us to scale out')");
  const model::FpgaDevice gt1150 = model::FpgaDevice::arria10_gt1150();
  for (int instances : {2, 3, 4}) {
    core::ArchConfig cfg = core::ArchConfig::k512_opt();
    cfg.name = std::to_string(instances * 256) + "-gt1150";
    cfg.instances = instances;
    cfg.bank_words = 32 * 1024 * 2 / instances;
    report(cfg, net, gt1150);
  }
  if (g_json) std::printf("\n  ]}\n]}\n");
  return 0;
}
