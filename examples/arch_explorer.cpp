// Architecture exploration — the paper's "variants from software and
// constraint changes alone" (§V), as a parameter sweep.
//
// Sweeps lanes×group, clock, bank size and weight-scratchpad size over the
// full-size VGG-16 workload with the validated performance model, and prints
// performance / area / power trade-offs — reproducing how the authors
// explored 16-unopt → 512-opt, and going beyond (e.g. a hypothetical
// 1024-MAC part on a GT1150).
//
// Usage: ./build/examples/arch_explorer [--pruned]
#include <cstdio>
#include <cstring>

#include "driver/study.hpp"
#include "model/power.hpp"

using namespace tsca;

namespace {

void report(const core::ArchConfig& cfg, const driver::StudyNetwork& net,
            const model::FpgaDevice& device) {
  const driver::VariantResult perf = driver::evaluate_variant(cfg, net);
  const model::AreaReport area = model::estimate_area(cfg);
  const model::PowerEstimate power =
      model::estimate_power(cfg, area, model::Activity::peak(cfg), device);
  const bool fits = area.alm_utilization(device) <= 0.85 &&
                    area.m20k_utilization(device) <= 1.0 &&
                    area.dsp_utilization(device) <= 1.0;
  std::printf("%-14s %4d @%3.0f  %7.1f %7.1f  %5.1f%% %5.1f%% %5.1f%%  "
              "%5.2fW %6.1f  %s\n",
              cfg.name.c_str(), cfg.macs_per_cycle(), cfg.clock_mhz,
              perf.network_gops, perf.best_gops,
              100 * area.alm_utilization(device),
              100 * area.dsp_utilization(device),
              100 * area.m20k_utilization(device), power.fpga_w(),
              perf.network_gops / power.fpga_w(),
              fits ? "" : "(does not fit!)");
}

}  // namespace

int main(int argc, char** argv) {
  bool pruned = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--pruned") == 0) pruned = true;

  const driver::StudyNetwork net =
      driver::build_study_network({.pruned = pruned});
  std::printf("VGG-16 (%s) architecture exploration\n\n", net.model_name.c_str());
  std::printf("%-14s %4s %5s %8s %7s  %6s %6s %6s  %6s %6s\n", "variant",
              "MACs", "MHz", "GOPS", "peak", "ALM", "DSP", "M20K", "power",
              "GOPS/W");

  const model::FpgaDevice sx660 = model::FpgaDevice::arria10_sx660();
  std::printf("--- the paper's four variants (SX660) ---\n");
  for (const core::ArchConfig& cfg : core::ArchConfig::paper_variants())
    report(cfg, net, sx660);

  std::printf("--- clock sweep on 256 MACs/cycle ---\n");
  for (double mhz : {55.0, 100.0, 150.0, 200.0}) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.name = "256@" + std::to_string(static_cast<int>(mhz));
    cfg.clock_mhz = mhz;
    report(cfg, net, sx660);
  }

  std::printf("--- weight scratchpad sweep (256-opt) ---\n");
  for (int words : {16, 64, 256, 1024}) {
    core::ArchConfig cfg = core::ArchConfig::k256_opt();
    cfg.name = "256 ws" + std::to_string(words);
    cfg.weight_scratch_words = words;
    report(cfg, net, sx660);
  }

  std::printf("--- scale-out on a GT1150 (paper §V: 'software changes alone "
              "would allow us to scale out') ---\n");
  const model::FpgaDevice gt1150 = model::FpgaDevice::arria10_gt1150();
  for (int instances : {2, 3, 4}) {
    core::ArchConfig cfg = core::ArchConfig::k512_opt();
    cfg.name = std::to_string(instances * 256) + "-gt1150";
    cfg.instances = instances;
    cfg.bank_words = 32 * 1024 * 2 / instances;
    report(cfg, net, gt1150);
  }
  return 0;
}
