// Custom network + batched inference.
//
// Builds a bespoke little CNN with the Network API (nothing VGG about it:
// 5x5 and 1x1 kernels, asymmetric padding, overlapping pooling), quantizes
// it, and runs a batch of images through the accelerator — convolutions via
// the weight-amortized batch path, everything checked against the int8
// reference.  Finishes with a per-kernel utilization profile of the busiest
// layer (cycle engine, track_utilization).
//
// Usage: ./build/examples/custom_network [batch_size]
#include <cstdio>
#include <cstdlib>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

using namespace tsca;

int main(int argc, char** argv) {
  const int batch = argc > 1 ? std::atoi(argv[1]) : 4;
  Rng rng(31337);

  // A deliberately non-VGG topology.
  nn::Network net({3, 40, 40}, "custom");
  net.add_pad(nn::Padding::uniform(2), "pad0")
      .add_conv({.out_c = 12, .kernel = 5, .stride = 1, .relu = true}, "conv5x5")
      .add_maxpool({.size = 3, .stride = 2}, "overlap_pool")
      .add_pad(nn::Padding{1, 0, 1, 0}, "asym_pad")
      .add_conv({.out_c = 24, .kernel = 3, .stride = 1, .relu = true}, "conv3x3")
      .add_conv({.out_c = 8, .kernel = 1, .stride = 1, .relu = false},
                "conv1x1")
      .add_maxpool({.size = 2, .stride = 2}, "pool2")
      .add_flatten()
      .add_fc({.out_dim = 10, .relu = false}, "fc")
      .add_softmax();

  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  nn::FeatureMapF calib(net.input_shape());
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);
  const quant::QuantizedModel model =
      quant::quantize_network(net, weights, {calib});

  std::vector<nn::FeatureMapI8> images;
  for (int b = 0; b < batch; ++b) {
    nn::FeatureMapF image(net.input_shape());
    for (std::size_t i = 0; i < image.size(); ++i)
      image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);
    images.push_back(quant::quantize_fm(image, model.input_exp));
  }

  core::Accelerator acc(core::ArchConfig::k256_opt());
  sim::Dram dram(128u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(acc, dram, dma, {.mode = driver::ExecMode::kCycle});

  // Compile every conv layer once up front — packing, weight image, stripe
  // plan — so the batch loop below only stages data and fires instructions.
  const std::vector<nn::LayerShape> shapes = net.infer_shapes();
  std::vector<driver::ConvProgram> conv_programs(net.layers().size());
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    if (net.layers()[i].kind != nn::LayerKind::kConv) continue;
    const nn::FmShape in = i == 0 ? net.input_shape() : shapes[i - 1].fm;
    conv_programs[i] = driver::compile_conv(
        acc.config(), in, pack::pack_filters(model.weights.conv[i]),
        model.weights.conv_bias[i], model.weights.conv_requant[i]);
  }

  // Layer-major batched execution: pads/pools per image, convs batched.
  std::vector<pack::TiledFm> fms;
  for (const nn::FeatureMapI8& image : images)
    fms.push_back(pack::to_tiled(image));
  std::uint64_t total_cycles = 0;
  bool ok = true;
  std::printf("%-14s %8s %12s\n", "layer", "kind", "cycles(batch)");
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const nn::LayerSpec& spec = net.layers()[i];
    if (spec.kind == nn::LayerKind::kFlatten) break;
    driver::LayerRun run;
    if (spec.kind == nn::LayerKind::kConv) {
      fms = runtime.run_conv_batch(fms, conv_programs[i], run);
    } else {
      const nn::FmShape out = shapes[i].fm;
      for (auto& fm : fms) {
        driver::LayerRun sub;
        if (spec.kind == nn::LayerKind::kPad)
          fm = runtime.run_pad_pool(fm, core::Opcode::kPad, out, 1, 1,
                                    -spec.pad.top, -spec.pad.left, sub);
        else
          fm = runtime.run_pad_pool(fm, core::Opcode::kPool, out,
                                    spec.pool.size, spec.pool.stride, 0, 0,
                                    sub);
        run.cycles += sub.cycles;
      }
    }
    total_cycles += run.cycles;
    std::printf("%-14s %8s %12llu\n", spec.name.c_str(),
                nn::layer_kind_name(spec.kind),
                static_cast<unsigned long long>(run.cycles));
  }

  // Verify the batch against the reference network.
  for (int b = 0; b < batch; ++b) {
    const std::vector<nn::ActivationI8> ref = nn::forward_i8_all(
        net, model.weights, images[static_cast<std::size_t>(b)]);
    // Find the last feature-map activation (before flatten).
    const nn::FeatureMapI8* last = nullptr;
    for (const auto& act : ref)
      if (!act.is_flat) last = &act.fm;
    if (last != nullptr &&
        pack::from_tiled(fms[static_cast<std::size_t>(b)]) != *last)
      ok = false;
  }
  const double ms = static_cast<double>(total_cycles) /
                    (acc.config().clock_mhz * 1e3);
  std::printf("\nbatch of %d: %llu cycles = %.2f ms at %.0f MHz "
              "(%.0f images/s); reference check: %s\n",
              batch, static_cast<unsigned long long>(total_cycles), ms,
              acc.config().clock_mhz, batch / (ms / 1e3),
              ok ? "bit-exact" : "MISMATCH");

  // Utilization profile of conv3x3 (the busiest layer).
  std::printf("\nper-kernel utilization, conv3x3, one image:\n");
  {
    // Re-run that layer standalone with tracking on.
    pack::TiledFm fm = pack::to_tiled(images[0]);
    driver::LayerRun run;
    std::size_t conv3 = 0;
    for (std::size_t i = 0; i < net.layers().size(); ++i)
      if (net.layers()[i].name == "conv3x3") conv3 = i;
    // Recreate the layer's input by running the prefix through the reference.
    const std::vector<nn::ActivationI8> ref =
        nn::forward_i8_all(net, model.weights, images[0]);
    const nn::FeatureMapI8& conv_in = ref[conv3 - 1].fm;

    // Reuse the precompiled program's weight image and stripe plan.
    const driver::ConvProgram& cp = conv_programs[conv3];
    const driver::WeightImage& wimg = cp.wimg;
    const driver::ConvPlan& plan = cp.plan;
    const pack::TiledFm tiled_in = pack::to_tiled(conv_in);
    for (int lane = 0; lane < 4; ++lane) {
      const auto bytes = driver::bank_stripe_bytes(
          tiled_in, lane, 4, 0, plan.stripes[0].in_tile_rows);
      acc.bank(lane).load(plan.ifm_base, bytes.data(), bytes.size());
      int base = plan.weight_base;
      for (int g = 0; g < wimg.groups(); ++g) {
        acc.bank(lane).load(base, wimg.bytes(g, lane).data(),
                            wimg.bytes(g, lane).size());
        base += wimg.aligned_words(g);
      }
    }
    std::vector<core::Instruction> instrs;
    int base = plan.weight_base;
    for (int g = 0; g < wimg.groups(); ++g) {
      instrs.push_back(core::Instruction::make_conv(driver::make_conv_instr(
          plan, plan.stripes[0], g, base, wimg, cp.bias, cp.rq, 4)));
      base += wimg.aligned_words(g);
    }
    hls::SystemOptions opts = core::Accelerator::default_options();
    opts.track_utilization = true;
    const core::BatchStats stats =
        acc.run_batch(instrs, hls::Mode::kCycle, opts);
    for (const auto& activity : stats.kernel_activity)
      std::printf("  %-12s %5.1f%%\n", activity.name.c_str(),
                  100.0 * static_cast<double>(activity.resumes) /
                      static_cast<double>(stats.cycles));
  }
  return ok ? 0 : 1;
}
