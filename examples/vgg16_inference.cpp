// End-to-end VGG-16 inference on the accelerator (scaled).
//
// The paper's full flow: a float model is pruned and quantized to 8-bit
// sign+magnitude ("Caffe" stage, here synthetic weights); pad/conv/pool run
// on the accelerator, fully-connected layers and softmax on the host ARM.
// The default channel scale (÷8) keeps the cycle-accurate run under a minute;
// pass a divisor argument to change it (1 = the real network — minutes).
//
// Usage: ./build/examples/vgg16_inference [channel_divisor] [--thread]
//            [--fast] [--pool[=N]] [--serve N] [--trace FILE] [--metrics]
//   --fast        run the SIMD functional fast path instead of a simulation
//                 engine: bit-identical outputs, cycle counts predicted by
//                 the performance model (flagged "predicted" below)
//   --pool[=N]    run layers through the PoolRuntime with N workers
//                 (default: hardware concurrency)
//   --serve N     serve N requests through the serving subsystem (queue +
//                 dynamic batching + worker threads) instead of one bare
//                 run; composes with --fast/--thread (execution mode),
//                 --pool (worker count), --trace and --metrics
//   --listen[=P]  serve over TCP on 127.0.0.1:P (default: an ephemeral
//                 port, printed once bound) until stdin reaches EOF —
//                 the wire protocol of serve/protocol.hpp; NetClient or
//                 serve::run_load drive it from another process.  Same
//                 composition as --serve, with which it conflicts
//   --trace FILE  write a Chrome trace_event JSON (chrome://tracing,
//                 Perfetto) of the run to FILE
//   --metrics     dump the metrics registry (counters + latency
//                 histograms) after the run
//
// Every flag composes with every other; conflicting or unknown flags are an
// error, not a silent override (picking exactly one execution engine is the
// only exclusivity: --thread vs --fast).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "core/accelerator.hpp"
#include "core/simd.hpp"
#include "driver/accelerator_pool.hpp"
#include "driver/pool_runtime.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "serve/load_generator.hpp"
#include "serve/net_server.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

using namespace tsca;

namespace {

[[noreturn]] void usage_error(const char* msg, const char* arg) {
  std::fprintf(stderr, "error: %s%s%s\n", msg, arg != nullptr ? ": " : "",
               arg != nullptr ? arg : "");
  std::fprintf(stderr,
               "usage: vgg16_inference [channel_divisor] [--thread|--fast] "
               "[--pool[=N]] [--serve N] [--listen[=PORT]] [--trace FILE] "
               "[--metrics]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int divisor = 8;
  bool divisor_set = false;
  driver::ExecMode mode = driver::ExecMode::kCycle;
  bool mode_set = false;
  int pool_workers = 0;  // 0 = serial Runtime
  int serve_requests = 0;  // 0 = single inference, no server
  bool listen = false;
  std::uint16_t listen_port = 0;  // 0 = ephemeral
  const char* trace_path = nullptr;
  bool dump_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--thread") == 0 ||
        std::strcmp(argv[i], "--fast") == 0) {
      const driver::ExecMode wanted = std::strcmp(argv[i], "--fast") == 0
                                          ? driver::ExecMode::kFast
                                          : driver::ExecMode::kThread;
      if (mode_set && mode != wanted)
        usage_error("--thread and --fast are mutually exclusive", nullptr);
      mode = wanted;
      mode_set = true;
    } else if (std::strcmp(argv[i], "--pool") == 0) {
      pool_workers = static_cast<int>(std::thread::hardware_concurrency());
      if (pool_workers < 1) pool_workers = 2;
    } else if (std::strncmp(argv[i], "--pool=", 7) == 0) {
      pool_workers = std::atoi(argv[i] + 7);
      if (pool_workers < 1)
        usage_error("--pool=N needs a positive worker count", argv[i]);
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_requests = std::atoi(argv[++i]);
      if (serve_requests < 1)
        usage_error("--serve N needs a positive request count", argv[i]);
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      listen = true;
    } else if (std::strncmp(argv[i], "--listen=", 9) == 0) {
      listen = true;
      const int port = std::atoi(argv[i] + 9);
      if (port < 0 || port > 65535)
        usage_error("--listen=PORT needs a port in [0, 65535]", argv[i]);
      listen_port = static_cast<std::uint16_t>(port);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (argv[i][0] == '-') {
      // An unrecognized flag used to fall through to atoi() and silently
      // reconfigure the network size; make it a hard error instead.
      usage_error("unknown flag", argv[i]);
    } else {
      if (divisor_set) usage_error("more than one channel divisor", argv[i]);
      divisor = std::atoi(argv[i]);
      if (divisor < 1)
        usage_error("channel divisor must be a positive integer", argv[i]);
      divisor_set = true;
    }
  }
  if (listen && serve_requests > 0)
    usage_error("--serve and --listen are mutually exclusive", nullptr);

  Rng rng(2017);
  const nn::Network net = nn::build_vgg16(
      {.input_extent = 64, .channel_divisor = divisor, .num_classes = 10});
  std::printf("VGG-16 (64x64 input, channels /%d), %zu layers\n", divisor,
              net.layers().size());

  // "Training": synthetic weights, pruned to the Han et al. profile.
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  const std::vector<double> densities =
      quant::prune_weights(net, weights, quant::vgg16_han_profile());
  std::printf("pruned conv densities: ");
  for (double d : densities) std::printf("%.0f%% ", 100 * d);
  std::printf("\n");

  // Calibration + quantization on a synthetic image.
  nn::FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);
  const quant::QuantizedModel model =
      quant::quantize_network(net, weights, {image});
  const nn::FeatureMapI8 input = quant::quantize_fm(image, model.input_exp);

  // Run on the accelerator — serial Runtime, or PoolRuntime with --pool.
  obs::Recorder recorder;
  obs::MetricsRegistry metrics;
  driver::RuntimeOptions options{.mode = mode};
  if (trace_path != nullptr) options.trace = &recorder;
  if (dump_metrics) options.metrics = &metrics;

  const core::ArchConfig cfg = core::ArchConfig::k256_opt();
  core::Accelerator accelerator(cfg);
  sim::Dram dram(256u << 20);
  sim::DmaEngine dma(dram);

  // Compile once (quantization packing, plans, DDR weight image), then
  // execute the immutable program — the paper's host-prepares / driver-fires
  // split.  A serving process would reuse `program` for every request.
  const auto tc = std::chrono::steady_clock::now();
  const driver::NetworkProgram program =
      driver::NetworkProgram::compile(net, model, cfg);
  const double compile_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - tc)
                               .count();
  std::printf("compiled program: %zu steps, %.1f KiB weight image (%.1f ms)\n",
              program.steps().size(),
              static_cast<double>(program.ddr_image().size()) / 1024.0,
              compile_s * 1e3);

  if (listen) {
    // Socket serving mode: the compiled program behind the full serving
    // pipeline, fronted by the TCP wire protocol.  Runs until stdin closes
    // (Ctrl-D, or the parent process closing the pipe) — the shape a
    // supervisor expects from a foreground service.
    serve::ServerOptions sopts;
    sopts.workers = pool_workers > 0 ? pool_workers : 1;
    sopts.mode = mode;
    if (trace_path != nullptr) sopts.trace = &recorder;
    if (dump_metrics) sopts.metrics = &metrics;
    serve::Server server(program, sopts);
    serve::NetServer net(server, {.port = listen_port});
    std::printf("listening on 127.0.0.1:%u  (%d worker%s, %s mode, "
                "max batch %d) — EOF on stdin stops\n",
                net.port(), sopts.workers, sopts.workers == 1 ? "" : "s",
                driver::exec_mode_name(mode), sopts.batch.max_batch);
    std::fflush(stdout);
    int ch;
    while ((ch = std::getchar()) != EOF) {
    }
    net.stop();
    server.stop();
    std::printf(
        "served: %lld completed, %lld deadline-missed, %lld rejected\n",
        static_cast<long long>(
            server.metrics().counter("serve.completed").value()),
        static_cast<long long>(
            server.metrics().counter("serve.deadline_missed").value()),
        static_cast<long long>(
            server.metrics().counter("serve.rejected_queue_full").value()));
    if (trace_path != nullptr) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
        return 1;
      }
      obs::write_chrome_trace(recorder, out);
      std::printf("wrote %zu trace events to %s\n", recorder.event_count(),
                  trace_path);
    }
    if (dump_metrics) std::printf("\nmetrics:\n%s", metrics.text().c_str());
    return 0;
  }

  if (serve_requests > 0) {
    // Serving mode: the compiled program behind a queue + dynamic batching +
    // worker threads, driven by a deterministic closed-loop load.
    serve::ServerOptions sopts;
    sopts.workers = pool_workers > 0 ? pool_workers : 1;
    sopts.mode = mode;
    if (trace_path != nullptr) sopts.trace = &recorder;
    if (dump_metrics) sopts.metrics = &metrics;
    serve::Server server(program, sopts);
    std::printf("serving %d requests: %d worker%s, %s mode, max batch %d\n",
                serve_requests, sopts.workers, sopts.workers == 1 ? "" : "s",
                driver::exec_mode_name(mode), sopts.batch.max_batch);

    serve::LoadOptions load;
    load.requests = serve_requests;
    load.concurrency = 2 * sopts.workers;
    load.seed = 2017;
    const serve::LoadReport report = serve::run_load(server, load);
    server.stop();

    std::printf("  ok %d  rejected %d  deadline-missed %d  cancelled %d\n",
                report.ok, report.rejected, report.deadline_missed,
                report.cancelled);
    std::printf("  latency p50=%lld us  p90=%lld us  p99=%lld us  "
                "(max batch %d)\n",
                static_cast<long long>(report.latency_us.p50),
                static_cast<long long>(report.latency_us.p90),
                static_cast<long long>(report.latency_us.p99),
                report.max_batch_seen);
    std::printf("  goodput %.1f req/s over %.2f s\n", report.goodput_rps,
                static_cast<double>(report.wall_us) * 1e-6);

    if (trace_path != nullptr) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
        return 1;
      }
      obs::write_chrome_trace(recorder, out);
      std::printf("wrote %zu trace events to %s\n", recorder.event_count(),
                  trace_path);
    }
    if (dump_metrics) std::printf("\nmetrics:\n%s", metrics.text().c_str());
    return 0;
  }

  driver::NetworkRun run;
  const auto t0 = std::chrono::steady_clock::now();
  if (pool_workers > 0) {
    std::printf("pool runtime: %d workers\n", pool_workers);
    driver::AcceleratorPool pool(cfg, {.workers = pool_workers});
    driver::PoolRuntime runtime(pool, options);
    run = runtime.run_network(program, input);
  } else {
    driver::Runtime runtime(accelerator, dram, dma, options);
    run = runtime.run_network(program, input);
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  const bool fast_mode = mode == driver::ExecMode::kFast;
  if (fast_mode)
    std::printf("\nSIMD backend: %s (%d int8 lanes per vector op)\n",
                core::simd::backend_name(), core::simd::backend().width);

  std::uint64_t total_cycles = 0;
  bool any_predicted = false;
  std::printf("\n%-10s %6s %9s %12s %14s%s\n", "layer", "kind", "stripes",
              "cycles", "MACs", fast_mode ? "   skip%" : "");
  for (const driver::LayerRun& lr : run.layers) {
    if (!lr.on_accelerator) continue;
    total_cycles += lr.cycles;
    any_predicted = any_predicted || lr.cycles_predicted;
    std::printf("%-10s %6s %9d %12llu%s %13lld", lr.name.c_str(),
                nn::layer_kind_name(lr.kind), lr.stripes,
                static_cast<unsigned long long>(lr.cycles),
                lr.cycles_predicted ? "*" : " ",
                static_cast<long long>(lr.macs));
    if (fast_mode) {
      // Activation-sparsity skip: share of MAC tile-ops the host fast path
      // elided because the gathered region was all zero (conv layers only).
      const std::uint64_t tiles = lr.fast.mac_tiles + lr.fast.mac_tiles_skipped;
      if (tiles > 0)
        std::printf("   %5.1f",
                    100.0 * static_cast<double>(lr.fast.mac_tiles_skipped) /
                        static_cast<double>(tiles));
      else
        std::printf("   %5s", "-");
    }
    std::printf("\n");
  }
  if (any_predicted)
    std::printf("(* cycles predicted by the performance model — the fast "
                "path runs no simulation; skip%% = host MAC tile-ops elided "
                "by the activation zero-skip)\n");
  const double mhz = cfg.clock_mhz;
  std::printf("\naccelerator total: %llu cycles = %.2f ms at %.0f MHz "
              "(simulated in %.1f s, %s mode)\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<double>(total_cycles) / (mhz * 1e3), mhz, elapsed,
              driver::exec_mode_name(mode));

  // Host-side classifier result.
  if (run.flat_output) {
    int best = 0;
    for (std::size_t i = 1; i < run.logits.size(); ++i)
      if (run.logits[i] > run.logits[static_cast<std::size_t>(best)])
        best = static_cast<int>(i);
    std::printf("predicted class: %d (logit %d)\n", best,
                run.logits[static_cast<std::size_t>(best)]);
  }

  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      return 1;
    }
    obs::write_chrome_trace(recorder, out);
    std::printf("wrote %zu trace events to %s (open in chrome://tracing "
                "or https://ui.perfetto.dev)\n",
                recorder.event_count(), trace_path);
  }
  if (dump_metrics) {
    std::printf("\nmetrics:\n%s", metrics.text().c_str());
  }
  return 0;
}
