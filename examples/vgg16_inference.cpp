// End-to-end VGG-16 inference on the accelerator (scaled).
//
// The paper's full flow: a float model is pruned and quantized to 8-bit
// sign+magnitude ("Caffe" stage, here synthetic weights); pad/conv/pool run
// on the accelerator, fully-connected layers and softmax on the host ARM.
// The default channel scale (÷8) keeps the cycle-accurate run under a minute;
// pass a divisor argument to change it (1 = the real network — minutes).
//
// Usage: ./build/examples/vgg16_inference [channel_divisor] [--thread]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/accelerator.hpp"
#include "driver/runtime.hpp"
#include "nn/vgg16.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "util/rng.hpp"

using namespace tsca;

int main(int argc, char** argv) {
  int divisor = 8;
  hls::Mode mode = hls::Mode::kCycle;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--thread") == 0)
      mode = hls::Mode::kThread;
    else
      divisor = std::atoi(argv[i]);
  }
  if (divisor < 1) divisor = 1;

  Rng rng(2017);
  const nn::Network net = nn::build_vgg16(
      {.input_extent = 64, .channel_divisor = divisor, .num_classes = 10});
  std::printf("VGG-16 (64x64 input, channels /%d), %zu layers\n", divisor,
              net.layers().size());

  // "Training": synthetic weights, pruned to the Han et al. profile.
  nn::WeightsF weights = nn::init_random_weights(net, rng);
  const std::vector<double> densities =
      quant::prune_weights(net, weights, quant::vgg16_han_profile());
  std::printf("pruned conv densities: ");
  for (double d : densities) std::printf("%.0f%% ", 100 * d);
  std::printf("\n");

  // Calibration + quantization on a synthetic image.
  nn::FeatureMapF image(net.input_shape());
  for (std::size_t i = 0; i < image.size(); ++i)
    image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);
  const quant::QuantizedModel model =
      quant::quantize_network(net, weights, {image});
  const nn::FeatureMapI8 input = quant::quantize_fm(image, model.input_exp);

  // Run on the accelerator.
  core::Accelerator accelerator(core::ArchConfig::k256_opt());
  sim::Dram dram(256u << 20);
  sim::DmaEngine dma(dram);
  driver::Runtime runtime(accelerator, dram, dma, {.mode = mode});

  const auto t0 = std::chrono::steady_clock::now();
  const driver::NetworkRun run = runtime.run_network(net, model, input);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::uint64_t total_cycles = 0;
  std::printf("\n%-10s %6s %9s %12s %14s\n", "layer", "kind", "stripes",
              "cycles", "MACs");
  for (const driver::LayerRun& lr : run.layers) {
    if (!lr.on_accelerator) continue;
    total_cycles += lr.cycles;
    std::printf("%-10s %6s %9d %12llu %14lld\n", lr.name.c_str(),
                nn::layer_kind_name(lr.kind), lr.stripes,
                static_cast<unsigned long long>(lr.cycles),
                static_cast<long long>(lr.macs));
  }
  const double mhz = accelerator.config().clock_mhz;
  std::printf("\naccelerator total: %llu cycles = %.2f ms at %.0f MHz "
              "(simulated in %.1f s, %s mode)\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<double>(total_cycles) / (mhz * 1e3), mhz, elapsed,
              mode == hls::Mode::kCycle ? "cycle" : "thread");

  // Host-side classifier result.
  if (run.flat_output) {
    int best = 0;
    for (std::size_t i = 1; i < run.logits.size(); ++i)
      if (run.logits[i] > run.logits[static_cast<std::size_t>(best)])
        best = static_cast<int>(i);
    std::printf("predicted class: %d (logit %d)\n", best,
                run.logits[static_cast<std::size_t>(best)]);
  }
  return 0;
}
