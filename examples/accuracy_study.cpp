// Accuracy study — the §IV-B analogue without ImageNet.
//
// The paper reports the pruned, 8-bit sign+magnitude VGG-16 "within 2 % of
// the original unpruned floating point" in validation.  We have no ImageNet,
// so we measure the same kind of quantity on synthetic data: over a batch of
// random inputs through a channel-scaled VGG-16, how often does each reduced
// model's top-1 prediction agree with the float oracle, and how large is the
// relative error of the logits?
//
// Models compared (all with identical topology and the same float weights):
//   int8          — 8-bit sign+magnitude quantization
//   int8-pruned   — + magnitude pruning (Han et al. densities)
//   ternary       — ±1 weights with power-of-two layer scales (future work)
//
// Usage: ./build/examples/accuracy_study [num_inputs]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "nn/vgg16.hpp"
#include "quant/prune.hpp"
#include "quant/quantize.hpp"
#include "quant/ternary.hpp"
#include "util/rng.hpp"

using namespace tsca;

namespace {

std::size_t argmax_f(const std::vector<float>& v) {
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmax_i8(const std::vector<std::int8_t>& v) {
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

// Last FC activation (the logits) of the int8 reference network.
std::vector<std::int8_t> int8_logits(const nn::Network& net,
                                     const quant::QuantizedModel& model,
                                     const nn::FeatureMapF& image) {
  const nn::FeatureMapI8 input = quant::quantize_fm(image, model.input_exp);
  const std::vector<nn::ActivationI8> acts =
      nn::forward_i8_all(net, model.weights, input);
  for (std::size_t i = net.layers().size(); i-- > 0;)
    if (net.layers()[i].kind == nn::LayerKind::kFullyConnected)
      return acts[i].flat;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const int num_inputs = argc > 1 ? std::atoi(argv[1]) : 40;
  Rng rng(424242);

  const nn::Network net = nn::build_vgg16(
      {.input_extent = 32, .channel_divisor = 8, .num_classes = 10});
  const nn::WeightsF weights = nn::init_random_weights(net, rng);
  nn::WeightsF pruned_weights = weights;
  quant::prune_weights(net, pruned_weights, quant::vgg16_han_profile());

  // Calibrate all three reduced models on a shared sample.
  nn::FeatureMapF calib(net.input_shape());
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);
  const quant::QuantizedModel q8 =
      quant::quantize_network(net, weights, {calib});
  const quant::QuantizedModel q8_pruned =
      quant::quantize_network(net, pruned_weights, {calib});
  const quant::QuantizedModel ternary =
      quant::ternarize_network(net, weights, {calib});

  int agree_q8 = 0;
  int agree_pruned = 0;
  int agree_ternary = 0;
  int agree_pruned_float = 0;
  for (int n = 0; n < num_inputs; ++n) {
    nn::FeatureMapF image(net.input_shape());
    for (std::size_t i = 0; i < image.size(); ++i)
      image.data()[i] = static_cast<float>(rng.next_gaussian() * 0.5);

    // Float oracle logits.
    const std::vector<nn::ActivationF> facts =
        nn::forward_f_all(net, weights, image);
    std::vector<float> flogits;
    for (std::size_t i = net.layers().size(); i-- > 0;)
      if (net.layers()[i].kind == nn::LayerKind::kFullyConnected) {
        flogits = facts[i].flat;
        break;
      }
    const std::size_t top_f = argmax_f(flogits);

    // Pruned float (isolates the pruning loss from the quantization loss).
    const std::vector<nn::ActivationF> pacts =
        nn::forward_f_all(net, pruned_weights, image);
    std::vector<float> plogits;
    for (std::size_t i = net.layers().size(); i-- > 0;)
      if (net.layers()[i].kind == nn::LayerKind::kFullyConnected) {
        plogits = pacts[i].flat;
        break;
      }
    if (argmax_f(plogits) == top_f) ++agree_pruned_float;

    if (argmax_i8(int8_logits(net, q8, image)) == top_f) ++agree_q8;
    if (argmax_i8(int8_logits(net, q8_pruned, image)) == top_f)
      ++agree_pruned;
    if (argmax_i8(int8_logits(net, ternary, image)) == top_f) ++agree_ternary;
  }

  std::printf("Top-1 agreement with the float oracle over %d synthetic "
              "inputs (scaled VGG-16):\n\n", num_inputs);
  std::printf("  %-26s %3d / %d  (%.0f%%)\n", "pruned float", agree_pruned_float,
              num_inputs, 100.0 * agree_pruned_float / num_inputs);
  std::printf("  %-26s %3d / %d  (%.0f%%)\n", "int8 sign+magnitude", agree_q8,
              num_inputs, 100.0 * agree_q8 / num_inputs);
  std::printf("  %-26s %3d / %d  (%.0f%%)\n", "int8 + pruning (paper model)",
              agree_pruned, num_inputs, 100.0 * agree_pruned / num_inputs);
  std::printf("  %-26s %3d / %d  (%.0f%%)\n", "ternary (future work)",
              agree_ternary, num_inputs, 100.0 * agree_ternary / num_inputs);
  std::printf(
      "\nNote: random untrained weights make this a *mechanism* check, not a\n"
      "benchmark accuracy claim — the paper's \"within 2%% of float\" needs\n"
      "trained weights and ImageNet (see EXPERIMENTS.md).\n");
  return 0;
}
